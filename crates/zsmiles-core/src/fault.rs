//! Deterministic fault injection for the storage stack.
//!
//! A corruption-hardening claim is only as strong as the faults it was
//! tested against. This module supplies seeded, reproducible fault
//! wrappers for both halves of the out-of-core I/O contract:
//!
//! * [`FaultySource`] wraps any [`ArchiveSource`] and can flip a
//!   pseudo-random bit of a read, silently zero the tail of a read (a
//!   short read the kernel never reported), inject an `io::Error` at the
//!   Nth operation, or present a truncated view of the container.
//! * [`FaultySink`] wraps any [`ArchiveSink`] and can fail the Nth
//!   operation outright, tear a write (a prefix reaches the medium, then
//!   the error), or flip a bit on the way down — the moves a dying disk
//!   or a `kill -9` mid-pack actually makes.
//!
//! Everything is driven by a caller-supplied seed and an operation
//! counter, never by wall-clock or global randomness: a failing test
//! names the exact `(seed, op)` pair that broke the stack, and re-runs
//! reproduce it. The wrappers are test infrastructure, but they live in
//! the library (not `#[cfg(test)]`) so integration tests, the bench
//! harness and downstream crates can all drive the same faults.

use crate::error::ZsmilesError;
use crate::sink::ArchiveSink;
use crate::source::ArchiveSource;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happens when the fault plan's operation index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an injected I/O error. Models `EIO`,
    /// `ENOSPC`, a yanked network mount — and, on a sink, the moment a
    /// pack process is killed (nothing after the failing op happens).
    Error,
    /// The operation "succeeds" but one seeded-pseudo-random bit of the
    /// bytes involved is flipped. Models silent media corruption.
    FlipBit,
    /// A short transfer the caller is not told about: a source fills
    /// only a prefix of the buffer (tail left zeroed), a sink persists
    /// only a prefix of the append and then reports the error. Models
    /// torn writes and lying reads.
    Short,
}

/// A fault scheduled at one operation index (0-based, counted across
/// the wrapper's lifetime).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub at_op: u64,
    pub fault: Fault,
}

/// SplitMix64 — the same stateless mixer the train subsystem seeds its
/// reservoir with. `(seed, op)` in, decorrelated bits out.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn injected(op: u64, what: &str) -> ZsmilesError {
    ZsmilesError::Io(format!("injected fault at op {op}: {what}"))
}

/// Flip one seeded bit of `buf` in place; returns the byte index hit.
fn flip_one_bit(seed: u64, op: u64, buf: &mut [u8]) -> Option<usize> {
    if buf.is_empty() {
        return None;
    }
    let r = mix(seed, op);
    let bit = (r as usize) % (buf.len() * 8);
    buf[bit / 8] ^= 1 << (bit % 8);
    Some(bit / 8)
}

/// Seeded prefix length for a `Short` fault: at least one byte missing,
/// at least zero delivered.
fn short_prefix(seed: u64, op: u64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    (mix(seed, !op) as usize) % len
}

/// An [`ArchiveSource`] that misbehaves on schedule.
///
/// Operation indices count `read_at` calls only (`len()` is free: a
/// `stat` never fails interestingly). Truncation is a standing view, not
/// a scheduled op: `truncated(n)` caps `len()` and bounds-checks reads
/// against the cap, exactly like a file that lost its tail.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    seed: u64,
    plan: Option<FaultPlan>,
    truncate_to: Option<u64>,
    ops: AtomicU64,
}

impl<S: ArchiveSource> FaultySource<S> {
    /// A transparent wrapper: no faults until one is scheduled.
    pub fn new(inner: S, seed: u64) -> FaultySource<S> {
        FaultySource {
            inner,
            seed,
            plan: None,
            truncate_to: None,
            ops: AtomicU64::new(0),
        }
    }

    /// Schedule `fault` for the `at_op`-th `read_at` call.
    pub fn with_fault(mut self, at_op: u64, fault: Fault) -> FaultySource<S> {
        self.plan = Some(FaultPlan { at_op, fault });
        self
    }

    /// Present the container as if it ended at byte `len` (reads beyond
    /// the cut fail with the same typed error a really-truncated file
    /// produces).
    pub fn truncated(mut self, len: u64) -> FaultySource<S> {
        self.truncate_to = Some(len);
        self
    }

    /// `read_at` calls observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ArchiveSource> ArchiveSource for FaultySource<S> {
    fn len(&self) -> u64 {
        match self.truncate_to {
            Some(cap) => self.inner.len().min(cap),
            None => self.inner.len(),
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let available = self.len();
        match offset.checked_add(buf.len() as u64) {
            Some(end) if end <= available => {}
            _ => {
                return Err(ZsmilesError::SourceOutOfBounds {
                    offset,
                    len: buf.len(),
                    available,
                })
            }
        }
        let scheduled = self.plan.filter(|p| p.at_op == op).map(|p| p.fault);
        if scheduled == Some(Fault::Error) {
            return Err(injected(op, "read_at refused"));
        }
        self.inner.read_at(offset, buf)?;
        match scheduled {
            Some(Fault::FlipBit) => {
                flip_one_bit(self.seed, op, buf);
            }
            Some(Fault::Short) => {
                let keep = short_prefix(self.seed, op, buf.len());
                for b in &mut buf[keep..] {
                    *b = 0;
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// An [`ArchiveSink`] that misbehaves on schedule.
///
/// Operation indices count every `append`, `write_at` and `flush` call,
/// in order — so sweeping `at_op` over `0..total_ops` simulates killing
/// a pack at every distinct point in its I/O schedule. After an
/// injected [`Fault::Error`] the sink goes dead: every later op fails
/// too, the way a killed process never writes again.
#[derive(Debug)]
pub struct FaultySink<K> {
    inner: K,
    seed: u64,
    plan: Option<FaultPlan>,
    ops: u64,
    dead: bool,
}

impl<K: ArchiveSink> FaultySink<K> {
    pub fn new(inner: K, seed: u64) -> FaultySink<K> {
        FaultySink {
            inner,
            seed,
            plan: None,
            ops: 0,
            dead: false,
        }
    }

    /// Schedule `fault` for the `at_op`-th sink operation.
    pub fn with_fault(mut self, at_op: u64, fault: Fault) -> FaultySink<K> {
        self.plan = Some(FaultPlan { at_op, fault });
        self
    }

    /// Sink operations observed so far (append + write_at + flush).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Whether an injected error has permanently killed the sink.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn inner(&self) -> &K {
        &self.inner
    }

    pub fn into_inner(self) -> K {
        self.inner
    }

    /// Count the op; return the fault due now, if any. An `Error` fault
    /// (or any op after one) reports `Fault::Error`.
    fn tick(&mut self) -> Option<Fault> {
        let op = self.ops;
        self.ops += 1;
        if self.dead {
            return Some(Fault::Error);
        }
        let due = self.plan.filter(|p| p.at_op == op).map(|p| p.fault);
        if due == Some(Fault::Error) {
            self.dead = true;
        }
        due
    }
}

impl<K: ArchiveSink> ArchiveSink for FaultySink<K> {
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError> {
        let op = self.ops;
        match self.tick() {
            Some(Fault::Error) => Err(injected(op, "append refused")),
            Some(Fault::FlipBit) => {
                let mut bent = buf.to_vec();
                flip_one_bit(self.seed, op, &mut bent);
                self.inner.append(&bent)
            }
            Some(Fault::Short) => {
                let keep = short_prefix(self.seed, op, buf.len());
                self.inner.append(&buf[..keep])?;
                self.dead = true;
                Err(injected(op, "append torn mid-write"))
            }
            None => self.inner.append(buf),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError> {
        let op = self.ops;
        match self.tick() {
            Some(Fault::Error) => Err(injected(op, "write_at refused")),
            Some(Fault::FlipBit) => {
                let mut bent = buf.to_vec();
                flip_one_bit(self.seed, op, &mut bent);
                self.inner.write_at(offset, &bent)
            }
            Some(Fault::Short) => {
                let keep = short_prefix(self.seed, op, buf.len());
                self.inner.write_at(offset, &buf[..keep])?;
                self.dead = true;
                Err(injected(op, "write_at torn mid-write"))
            }
            None => self.inner.write_at(offset, buf),
        }
    }

    fn position(&self) -> u64 {
        self.inner.position()
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        let op = self.ops;
        match self.tick() {
            Some(Fault::Error) => Err(injected(op, "flush refused")),
            _ => self.inner.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::InMemorySink;
    use crate::source::InMemorySource;

    fn payload() -> Vec<u8> {
        (0u8..=255).cycle().take(1000).collect()
    }

    #[test]
    fn transparent_until_scheduled() {
        let src = FaultySource::new(InMemorySource::new(payload()), 7);
        let mut buf = [0u8; 16];
        src.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf[..], &payload()[10..26]);
        assert_eq!(src.ops(), 1);
    }

    #[test]
    fn bit_flip_is_deterministic_and_single_bit() {
        let read = |seed| {
            let src = FaultySource::new(InMemorySource::new(payload()), seed)
                .with_fault(0, Fault::FlipBit);
            let mut buf = [0u8; 64];
            src.read_at(0, &mut buf).unwrap();
            buf
        };
        let a = read(41);
        let b = read(41);
        assert_eq!(a, b, "same seed, same flip");
        let clean = &payload()[..64];
        let differing: Vec<usize> = (0..64).filter(|&i| a[i] != clean[i]).collect();
        assert_eq!(differing.len(), 1, "exactly one byte touched");
        let delta = a[differing[0]] ^ clean[differing[0]];
        assert_eq!(delta.count_ones(), 1, "exactly one bit flipped");
        // A different seed lands (almost surely) on a different bit.
        let c = read(999);
        assert_ne!(a, c);
    }

    #[test]
    fn error_fires_only_at_the_scheduled_op() {
        let src = FaultySource::new(InMemorySource::new(payload()), 3).with_fault(2, Fault::Error);
        let mut buf = [0u8; 8];
        src.read_at(0, &mut buf).unwrap();
        src.read_at(8, &mut buf).unwrap();
        let err = src.read_at(16, &mut buf).unwrap_err();
        assert!(matches!(err, ZsmilesError::Io(_)), "{err}");
        assert!(err.to_string().contains("injected fault at op 2"), "{err}");
        // Sources recover: the next op is clean again.
        src.read_at(24, &mut buf).unwrap();
        assert_eq!(&buf[..], &payload()[24..32]);
    }

    #[test]
    fn short_read_zeroes_the_tail_silently() {
        let src = FaultySource::new(InMemorySource::new(payload()), 11).with_fault(0, Fault::Short);
        let mut buf = [0xAAu8; 32];
        src.read_at(0, &mut buf).unwrap();
        let keep = short_prefix(11, 0, 32);
        assert!(keep < 32);
        assert_eq!(&buf[..keep], &payload()[..keep]);
        assert!(buf[keep..].iter().all(|&b| b == 0), "tail zeroed");
    }

    #[test]
    fn truncated_view_bounds_like_a_short_file() {
        let src = FaultySource::new(InMemorySource::new(payload()), 0).truncated(100);
        assert_eq!(ArchiveSource::len(&src), 100);
        let mut buf = [0u8; 10];
        src.read_at(90, &mut buf).unwrap();
        let err = src.read_at(95, &mut buf).unwrap_err();
        assert!(
            matches!(err, ZsmilesError::SourceOutOfBounds { .. }),
            "{err}"
        );
    }

    #[test]
    fn sink_error_is_permanent() {
        let mut sink = FaultySink::new(InMemorySink::new(), 5).with_fault(1, Fault::Error);
        sink.append(b"good").unwrap();
        assert!(sink.append(b"bad").is_err());
        assert!(sink.is_dead());
        assert!(sink.append(b"later").is_err(), "dead sinks stay dead");
        assert!(sink.flush().is_err());
        assert_eq!(sink.into_inner().into_bytes(), b"good");
    }

    #[test]
    fn sink_short_write_persists_a_prefix_then_errors() {
        let mut sink = FaultySink::new(InMemorySink::new(), 9).with_fault(0, Fault::Short);
        let err = sink.append(&payload()[..100]).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(sink.is_dead());
        let written = sink.into_inner().into_bytes();
        assert!(written.len() < 100);
        assert_eq!(&written[..], &payload()[..written.len()]);
    }

    #[test]
    fn sink_bit_flip_corrupts_exactly_one_bit() {
        let mut sink = FaultySink::new(InMemorySink::new(), 13).with_fault(0, Fault::FlipBit);
        sink.append(&payload()[..64]).unwrap();
        sink.append(&payload()[64..128]).unwrap();
        let written = sink.into_inner().into_bytes();
        assert_eq!(written.len(), 128);
        let diff: u8 = written
            .iter()
            .zip(&payload()[..128])
            .map(|(a, b)| a ^ b)
            .fold(0, |acc, d| acc | d);
        let flipped: u32 = written
            .iter()
            .zip(&payload()[..128])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "one bit corrupted (xor fold {diff:02x})");
    }

    #[test]
    fn sink_counts_every_op_kind() {
        let mut sink = FaultySink::new(InMemorySink::new(), 1);
        sink.append(b"abcd").unwrap();
        sink.write_at(0, b"A").unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.ops(), 3);
        assert_eq!(sink.position(), 4);
    }
}
