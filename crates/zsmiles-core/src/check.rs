//! Deep verify and repair — `fsck` for decks.
//!
//! The reader's open-time cross-checks and opt-in `verify()` CRC pass
//! catch most damage lazily, at the moment a read trips over it. This
//! module is the eager counterpart: [`check_deck`] walks **everything**
//! — container header/footer/layout, embedded dictionary, line index,
//! streaming CRC, a full per-line decode, and (for sharded decks) every
//! manifest cross-check — and reports per-shard findings instead of
//! stopping at the first, so an operator sees the whole blast radius of
//! an incident in one pass.
//!
//! Two recovery verbs operate on a report:
//!
//! * [`repair_deck`] — *metadata* repair. A shard that is internally
//!   sound but disagrees with its manifest row (stale `lines`/`bytes`/
//!   `crc32` after a partial restore, a corrupted manifest rewritten
//!   from backup) gets its row rewritten from the actual file,
//!   atomically. Payload damage is untouched: repair never invents
//!   bytes.
//! * [`quarantine_shards`] — move each damaged shard file aside to
//!   `<name>.quarantined`. The manifest keeps its row, so global line
//!   numbering is stable and a degraded open
//!   ([`crate::shard::ShardedReader::open_degraded`]) serves everything
//!   else while the quarantined lines answer
//!   [`crate::error::ZsmilesError::ShardUnavailable`].
//!
//! The report renders as JSON ([`CheckReport::to_json`]) so orchestration
//! can parse it without scraping log lines.

use crate::error::ZsmilesError;
use crate::reader::ArchiveReader;
use crate::shard::{check_shard_meta, is_manifest, ShardManifest, ShardMeta};
use crate::source::{ArchiveSource, AutoSource};
use std::path::{Path, PathBuf};

/// One checked container (a single `.zsa`, or one shard of a `.zsm`).
#[derive(Debug, Clone)]
pub struct ShardCheck {
    /// File name (manifest-relative for shards, the input path for a
    /// single archive).
    pub file: String,
    /// Lines the container actually decodes (0 when it would not open).
    pub lines: u64,
    /// Container bytes on disk (0 when the file is missing).
    pub file_bytes: u64,
    /// Every integrity failure found, in check order. Empty = sound.
    pub errors: Vec<String>,
    /// Whether the shard is internally sound (opens, CRC passes, every
    /// line decodes) even if its manifest row disagrees — the class
    /// [`repair_deck`] can fix by rewriting the row.
    pub internally_sound: bool,
}

impl ShardCheck {
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// What [`check_deck`] found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The deck path checked.
    pub path: PathBuf,
    /// `"single"` or `"sharded"`.
    pub layout: &'static str,
    /// Manifest generation (0 for single files / v1 manifests).
    pub generation: u64,
    /// Total decodable lines across sound containers.
    pub lines_ok: u64,
    /// Per-container findings, manifest order.
    pub shards: Vec<ShardCheck>,
}

impl CheckReport {
    /// Containers with at least one failure.
    pub fn bad_shards(&self) -> impl Iterator<Item = &ShardCheck> {
        self.shards.iter().filter(|s| !s.is_ok())
    }

    pub fn bad_count(&self) -> usize {
        self.bad_shards().count()
    }

    pub fn is_ok(&self) -> bool {
        self.bad_count() == 0
    }

    /// Render as JSON for orchestration. Hand-rolled (the workspace is
    /// hermetic — no serde); strings are escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.shards.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"path\": {},\n",
            json_str(&self.path.to_string_lossy())
        ));
        out.push_str(&format!("  \"layout\": {},\n", json_str(self.layout)));
        out.push_str(&format!("  \"generation\": {},\n", self.generation));
        out.push_str(&format!(
            "  \"status\": {},\n",
            json_str(if self.is_ok() { "ok" } else { "bad" })
        ));
        out.push_str(&format!("  \"shards_total\": {},\n", self.shards.len()));
        out.push_str(&format!("  \"shards_bad\": {},\n", self.bad_count()));
        out.push_str(&format!("  \"lines_ok\": {},\n", self.lines_ok));
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"file\": {}, ", json_str(&s.file)));
            out.push_str(&format!(
                "\"status\": {}, ",
                json_str(if s.is_ok() { "ok" } else { "bad" })
            ));
            out.push_str(&format!("\"lines\": {}, ", s.lines));
            out.push_str(&format!("\"bytes\": {}, ", s.file_bytes));
            out.push_str(&format!("\"internally_sound\": {}, ", s.internally_sound));
            out.push_str("\"errors\": [");
            for (j, e) in s.errors.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(e));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.shards.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The internal soundness pass every container gets: open (header /
/// dictionary / line-index / layout cross-checks), streaming CRC, and a
/// decode of every line. Returns the reader (for callers that go on to
/// cross-check the manifest row) plus the findings.
fn check_container(path: &Path, name: &str) -> (Option<ArchiveReader<AutoSource>>, ShardCheck) {
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut check = ShardCheck {
        file: name.to_string(),
        lines: 0,
        file_bytes,
        errors: Vec::new(),
        internally_sound: false,
    };
    let reader = match AutoSource::open(path).and_then(ArchiveReader::from_source) {
        Ok(r) => r,
        Err(e) => {
            check.errors.push(format!("open: {e}"));
            return (None, check);
        }
    };
    check.lines = reader.len() as u64;
    let mut sound = true;
    if let Err(e) = reader.verify() {
        check.errors.push(format!("crc: {e}"));
        sound = false;
    }
    // Per-line decode: the CRC can pass while the *index* lies about line
    // boundaries only if the container was re-signed; decode catches
    // payload that no dictionary walk accepts either way.
    let mut decoded = 0u64;
    for line in reader.lines_batched(crate::reader::DEFAULT_BATCH_BYTES) {
        match line {
            Ok(_) => decoded += 1,
            Err(e) => {
                check.errors.push(format!("decode at line {decoded}: {e}"));
                sound = false;
                break;
            }
        }
    }
    if sound && decoded != reader.len() as u64 {
        check.errors.push(format!(
            "decode: {decoded} of {} lines produced",
            reader.len()
        ));
        sound = false;
    }
    check.internally_sound = sound;
    (Some(reader), check)
}

/// Deep-verify a deck — single `.zsa` or sharded `.zsm` — and report
/// every finding. Only an unreadable/unparseable manifest (there is no
/// shard table to walk) or a missing input is a hard error; everything
/// else lands in the report.
pub fn check_deck(path: &Path) -> Result<CheckReport, ZsmilesError> {
    if !is_manifest(path)? {
        // A single file carries no manifest row to disagree with:
        // internally sound IS sound.
        let (_, check) = check_container(path, &path.to_string_lossy());
        let lines_ok = if check.is_ok() { check.lines } else { 0 };
        return Ok(CheckReport {
            path: path.to_path_buf(),
            layout: "single",
            generation: 0,
            lines_ok,
            shards: vec![check],
        });
    }

    let manifest = ShardManifest::load(path)?;
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut shards = Vec::with_capacity(manifest.shards().len());
    let mut lines_ok = 0u64;
    // Reference dictionary: the first sound shard whose row also
    // matches, same rule the degraded open uses.
    let mut first_dict: Option<(String, Vec<u8>)> = None;
    for meta in manifest.shards() {
        let (reader, mut check) = check_container(&dir.join(&meta.file), &meta.file);
        if let Some(reader) = reader {
            if let Err(e) = check_shard_meta(&reader, meta, manifest.flavor()) {
                check.errors.push(format!("manifest: {e}"));
            }
            let mut dict_bytes = Vec::new();
            if let Err(e) = reader.dictionary().write(&mut dict_bytes) {
                check.errors.push(format!("dictionary: {e}"));
            } else {
                match &first_dict {
                    None => first_dict = Some((meta.file.clone(), dict_bytes)),
                    Some((ref_file, first)) if *first != dict_bytes => {
                        check.errors.push(format!(
                            "dictionary: embedded dictionary differs from shard {ref_file}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        if check.is_ok() {
            lines_ok += check.lines;
        }
        shards.push(check);
    }
    Ok(CheckReport {
        path: path.to_path_buf(),
        layout: "sharded",
        generation: manifest.generation(),
        lines_ok,
        shards,
    })
}

/// What a repair pass did.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Manifest rows rewritten from internally-sound shard files.
    pub rows_rewritten: Vec<String>,
    /// Shards too damaged for metadata repair (payload corrupt or file
    /// missing) — candidates for [`quarantine_shards`].
    pub unrepairable: Vec<String>,
}

/// Metadata repair: for every shard the report flags as *internally
/// sound* but mismatching its manifest row, rewrite the row
/// (`lines`/`bytes`/`crc32`) from the actual file and atomically save
/// the manifest. Shards with payload damage are reported, not touched —
/// repair never invents data. Returns what changed.
pub fn repair_deck(path: &Path, report: &CheckReport) -> Result<RepairOutcome, ZsmilesError> {
    if report.layout != "sharded" {
        return Err(ZsmilesError::Unsupported {
            what: "repair of single-file archives (re-pack from the source deck instead)".into(),
        });
    }
    let manifest = ShardManifest::load(path)?;
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut outcome = RepairOutcome::default();
    let mut rows: Vec<ShardMeta> = manifest.shards().to_vec();
    for (row, check) in rows.iter_mut().zip(&report.shards) {
        debug_assert_eq!(row.file, check.file, "report rows parallel the manifest");
        if check.is_ok() {
            continue;
        }
        if !check.internally_sound {
            outcome.unrepairable.push(check.file.clone());
            continue;
        }
        // Internally sound, row wrong: re-derive the row from the file.
        let reader = ArchiveReader::from_source(AutoSource::open(&dir.join(&row.file))?)?;
        row.lines = reader.len() as u64;
        row.file_bytes = reader.source().len();
        row.crc32 = reader.container_crc();
        outcome.rows_rewritten.push(check.file.clone());
    }
    if !outcome.rows_rewritten.is_empty() {
        ShardManifest::new(manifest.flavor(), rows)
            .with_generation(manifest.generation())
            .save(path)?;
    }
    Ok(outcome)
}

/// Move every damaged shard in `report` aside to `<name>.quarantined`
/// (the manifest row stays, so global line numbering is preserved and a
/// degraded open serves the rest). Returns the shard names moved.
pub fn quarantine_shards(path: &Path, report: &CheckReport) -> Result<Vec<String>, ZsmilesError> {
    if report.layout != "sharded" {
        return Err(ZsmilesError::Unsupported {
            what: "quarantining a single-file archive (it is the whole deck)".into(),
        });
    }
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut moved = Vec::new();
    for check in report.bad_shards() {
        let from = dir.join(&check.file);
        if !from.exists() {
            continue; // already gone — nothing to move aside
        }
        std::fs::rename(&from, dir.join(format!("{}.quarantined", check.file)))?;
        moved.push(check.file.clone());
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;
    use crate::engine::AnyDictionary;
    use crate::shard::{ShardPolicy, ShardedReader, ShardedWriter};
    use crate::writer::WriterOptions;

    fn deck_lines() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 5] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(120).collect()
    }

    fn deck_bytes() -> Vec<u8> {
        deck_lines()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect()
    }

    fn dict() -> AnyDictionary {
        AnyDictionary::Base(Box::new(
            DictBuilder {
                min_count: 2,
                preprocess: false,
                ..Default::default()
            }
            .train(deck_lines())
            .unwrap(),
        ))
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zsmiles_check_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pack(dir: &Path) -> PathBuf {
        let zsm = dir.join("deck.zsm");
        let mut w = ShardedWriter::create(
            &zsm,
            dict(),
            ShardPolicy::by_lines(40),
            WriterOptions {
                threads: 1,
                batch_bytes: 256,
            },
        )
        .unwrap();
        w.write(&deck_bytes()).unwrap();
        w.finish().unwrap();
        zsm
    }

    #[test]
    fn clean_deck_checks_ok_and_reports_json() {
        let dir = tmpdir("clean");
        let zsm = pack(&dir);
        let report = check_deck(&zsm).unwrap();
        assert!(report.is_ok(), "{:?}", report);
        assert_eq!(report.layout, "sharded");
        assert_eq!(report.lines_ok, 120);
        assert_eq!(report.shards.len(), 3);
        let json = report.to_json();
        assert!(json.contains("\"status\": \"ok\""), "{json}");
        assert!(json.contains("\"shards_bad\": 0"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn payload_corruption_is_found_named_and_quarantinable() {
        let dir = tmpdir("corrupt");
        let zsm = pack(&dir);
        // Flip one payload bit in the middle shard.
        let victim = dir.join("deck.00001.zsa");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&victim, &bytes).unwrap();

        let report = check_deck(&zsm).unwrap();
        assert_eq!(report.bad_count(), 1);
        let bad = report.bad_shards().next().unwrap();
        assert_eq!(bad.file, "deck.00001.zsa");
        assert!(!bad.internally_sound);
        assert!(report.to_json().contains("deck.00001.zsa"));

        // Metadata repair refuses to touch payload damage.
        let outcome = repair_deck(&zsm, &report).unwrap();
        assert!(outcome.rows_rewritten.is_empty());
        assert_eq!(outcome.unrepairable, vec!["deck.00001.zsa".to_string()]);

        // Quarantine moves it aside; degraded open serves the rest.
        let moved = quarantine_shards(&zsm, &report).unwrap();
        assert_eq!(moved, vec!["deck.00001.zsa".to_string()]);
        assert!(dir.join("deck.00001.zsa.quarantined").exists());
        let reader = ShardedReader::open_degraded(&zsm).unwrap();
        assert!(reader.is_degraded());
        assert_eq!(reader.len(), 120);
        assert!(reader.get(0).is_ok());
        assert!(matches!(
            reader.get(50),
            Err(ZsmilesError::ShardUnavailable { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_manifest_rows_are_repaired_from_sound_shards() {
        let dir = tmpdir("repair");
        let zsm = pack(&dir);
        // Corrupt the manifest's CRC column for shard 2 (the shard file
        // itself is untouched — this is metadata damage).
        let text = std::fs::read_to_string(&zsm).unwrap();
        let bent: String = text
            .lines()
            .map(|l| {
                if l.starts_with("shard deck.00002.zsa") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    parts[4] = "deadbeef";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&zsm, bent + "\n").unwrap();
        assert!(ShardedReader::open(&zsm).is_err(), "strict open refuses");

        let report = check_deck(&zsm).unwrap();
        let bad = report.bad_shards().next().unwrap();
        assert_eq!(bad.file, "deck.00002.zsa");
        assert!(bad.internally_sound, "shard file itself is fine");

        let outcome = repair_deck(&zsm, &report).unwrap();
        assert_eq!(outcome.rows_rewritten, vec!["deck.00002.zsa".to_string()]);
        assert!(outcome.unrepairable.is_empty());

        // Repaired deck is fully healthy again.
        assert!(check_deck(&zsm).unwrap().is_ok());
        let reader = ShardedReader::open(&zsm).unwrap();
        assert_eq!(reader.len(), 120);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_deck_checks_and_refuses_shard_verbs() {
        let dir = tmpdir("single");
        let zsa = dir.join("deck.zsa");
        let sink = crate::sink::FileSink::create(&zsa).unwrap();
        let mut w =
            crate::writer::ArchiveWriter::with_options(sink, dict(), WriterOptions::default())
                .unwrap();
        w.write(&deck_bytes()).unwrap();
        w.finish().unwrap();

        let report = check_deck(&zsa).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.layout, "single");
        assert_eq!(report.lines_ok, 120);
        assert!(matches!(
            repair_deck(&zsa, &report),
            Err(ZsmilesError::Unsupported { .. })
        ));
        assert!(matches!(
            quarantine_shards(&zsa, &report),
            Err(ZsmilesError::Unsupported { .. })
        ));

        // Corrupt it: check names the damage instead of panicking.
        let mut bytes = std::fs::read(&zsa).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&zsa, &bytes).unwrap();
        let report = check_deck(&zsa).unwrap();
        assert_eq!(report.bad_count(), 1);
        assert_eq!(report.lines_ok, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
