//! Sharded `.zsa` archives: one `.zsm` manifest plus N ordinary
//! single-file shards, read through one reader facade.
//!
//! Billion-line screening decks outgrow a single file long before they
//! outgrow a single *format* — object stores cap object sizes, parallel
//! filesystems want striping units, and re-packing a 72 TB campaign into
//! one container serializes what is an embarrassingly splittable job. A
//! sharded archive keeps every paper property (readable payload, O(1)
//! line access, embedded dictionary) by construction: each shard **is** a
//! complete, self-describing `.zsa`, and the manifest is a small readable
//! text file that orders them and records per-shard line counts, byte
//! sizes and CRCs:
//!
//! ```text
//! #zsmiles-shards v1
//! flavor base
//! lines 100000
//! shard deck.00000.zsa 10000 184062 9ab3f2e1
//! shard deck.00001.zsa 10000 183990 4710c022
//! ...
//! ```
//!
//! * [`ShardedWriter`] streams raw deck bytes exactly like
//!   [`crate::writer::ArchiveWriter`] (it drives one per shard), cutting
//!   shards by a [`ShardPolicy`] line or byte budget. With
//!   [`WriterOptions::threads`] > 1 it compresses that many complete
//!   shards **concurrently** on the persistent
//!   [`crate::parallel::WorkerPool`] — shard cuts are decided by the
//!   policy alone and manifest rows are stitched in shard order, so the
//!   output stays byte-identical to a serial pack.
//! * [`ShardedReader`] opens the manifest, cross-checks every shard
//!   against its manifest entry (flavor, line count, file size, stored
//!   CRC, identical embedded dictionary) *without touching any payload*,
//!   and serves the [`crate::reader::ArchiveReader`] read surface —
//!   `get` / `get_range` / `get_many` / batched [`ShardedReader::lines`]
//!   / streaming [`ShardedReader::unpack_to`] — by routing global line
//!   numbers across shards with a binary search on the manifest's
//!   cumulative line table.
//! * [`DeckReader`] is the run-time dispatch: point it at a `.zsa` or a
//!   `.zsm` and every caller (CLI, screening code) works unchanged
//!   against either layout.
//!
//! Line numbering is global and identical to a single-file pack of the
//! same deck: shard cuts happen between lines, per-line encoding is
//! context-free, and every shard embeds the same dictionary — so a
//! sharded pack is line-for-line byte-identical to the single-file pack,
//! a property the proptest suite pins down at random budgets.

use crate::cache::BlockCache;
use crate::compress::CompressStats;
use crate::engine::{AnyDictionary, DictFlavor, DynEngine, LineDecoder};
use crate::error::ZsmilesError;
use crate::parallel::WorkerPool;
use crate::reader::{ArchiveReader, LineIter, DEFAULT_BATCH_BYTES};
use crate::sink::{sync_parent_dir, ArchiveSink, AtomicFileSink, DeferredSync};
use crate::source::{ArchiveSource, AutoSource};
use crate::writer::{ArchiveWriter, PackInfo, WriterOptions};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How to open a deck for reading. The default picks the platform's best
/// read path per file (mmap where available, shared-block-cache positioned
/// I/O otherwise). Supplying a `cache` forces every file through cached
/// positioned I/O on that specific [`BlockCache`] — the serving layer uses
/// this so a retired generation's blocks can be dropped deterministically
/// ([`DeckReader::retire_cached_blocks`]) without touching the global
/// cache other readers share.
#[derive(Debug, Clone, Default)]
pub struct DeckOptions {
    /// When set, open every archive file through [`crate::source::CachedSource`]
    /// on this cache instead of the platform default.
    pub cache: Option<Arc<BlockCache>>,
}

impl DeckOptions {
    fn open_source(&self, path: &Path) -> Result<AutoSource, ZsmilesError> {
        match &self.cache {
            Some(cache) => AutoSource::open_cached_with(path, Arc::clone(cache)),
            None => AutoSource::open(path),
        }
    }
}

/// First line of a v1 `.zsm` manifest (the PR 4 format).
pub const MANIFEST_MAGIC: &str = "#zsmiles-shards v1";

/// First line of a v2 `.zsm` manifest: v1 plus the optional `generation`
/// row. The writer only bumps to v2 when a generation is actually set, so
/// decks without one stay byte-identical to the historical format and
/// old readers keep working on them.
pub const MANIFEST_MAGIC_V2: &str = "#zsmiles-shards v2";

/// The magic prefix shared by every manifest version — what
/// [`is_manifest`] sniffs.
const MANIFEST_MAGIC_PREFIX: &str = "#zsmiles-shards v";

fn bad(reason: impl Into<String>) -> ZsmilesError {
    ZsmilesError::ManifestFormat {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One shard's row in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the manifest's directory (a plain
    /// file name — no path separators).
    pub file: String,
    /// Ligand lines the shard stores.
    pub lines: u64,
    /// Total container bytes of the shard file.
    pub file_bytes: u64,
    /// The shard container's stored CRC32 (its footer value).
    pub crc32: u32,
}

/// The parsed shard table of a `.zsm` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    flavor: DictFlavor,
    total_lines: u64,
    /// Dataset generation (epoch) this manifest describes; 0 for decks
    /// that never set one (every v1 manifest reads as generation 0).
    generation: u64,
    shards: Vec<ShardMeta>,
}

impl ShardManifest {
    pub fn new(flavor: DictFlavor, shards: Vec<ShardMeta>) -> ShardManifest {
        let total_lines = shards.iter().map(|s| s.lines).sum();
        ShardManifest {
            flavor,
            total_lines,
            generation: 0,
            shards,
        }
    }

    /// Stamp a dataset generation onto the manifest (builder style).
    /// A nonzero generation bumps the serialized format to v2.
    pub fn with_generation(mut self, generation: u64) -> ShardManifest {
        self.generation = generation;
        self
    }

    pub fn flavor(&self) -> DictFlavor {
        self.flavor
    }

    /// The dataset generation this manifest declares (0 = none declared).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total ligand lines across all shards.
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    pub fn shards(&self) -> &[ShardMeta] {
        &self.shards
    }

    /// Serialize in the readable `.zsm` text format: v1 when no
    /// generation is set (byte-identical to the historical format), v2
    /// with a `generation` row otherwise.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        if self.generation == 0 {
            writeln!(w, "{MANIFEST_MAGIC}")?;
        } else {
            writeln!(w, "{MANIFEST_MAGIC_V2}")?;
        }
        writeln!(w, "flavor {}", self.flavor.name())?;
        writeln!(w, "lines {}", self.total_lines)?;
        if self.generation != 0 {
            writeln!(w, "generation {}", self.generation)?;
        }
        for s in &self.shards {
            writeln!(
                w,
                "shard {} {} {} {:08x}",
                s.file, s.lines, s.file_bytes, s.crc32
            )?;
        }
        Ok(())
    }

    /// Parse a `.zsm` manifest, either version. Strict per version: a
    /// `generation` row in a v1 manifest is a format error (v1 readers
    /// never knew the field, so a v1 file carrying it is corrupt or
    /// mislabelled), and an unknown version is refused outright.
    pub fn read_from(bytes: &[u8]) -> Result<ShardManifest, ZsmilesError> {
        let text = std::str::from_utf8(bytes).map_err(|_| bad("manifest is not UTF-8 text"))?;
        let mut lines = text.lines();
        let version = match lines.next().map(str::trim) {
            Some(magic) if magic == MANIFEST_MAGIC => 1,
            Some(magic) if magic == MANIFEST_MAGIC_V2 => 2,
            Some(magic) if magic.starts_with(MANIFEST_MAGIC_PREFIX) => {
                return Err(bad(format!(
                    "unsupported manifest version '{magic}' (this build reads v1 and v2)"
                )))
            }
            _ => return Err(bad("not a .zsm shard manifest")),
        };
        let mut flavor = None;
        let mut declared_lines = None;
        let mut generation = None;
        let mut shards = Vec::new();
        for (no, raw) in lines.enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split_whitespace();
            match f.next() {
                Some("flavor") => {
                    flavor = Some(match f.next() {
                        Some("base") => DictFlavor::Base,
                        Some("wide") => DictFlavor::Wide,
                        other => {
                            return Err(bad(format!("line {}: unknown flavor {other:?}", no + 2)))
                        }
                    });
                }
                Some("lines") => {
                    declared_lines = Some(
                        f.next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad(format!("line {}: bad line count", no + 2)))?,
                    );
                }
                Some("generation") => {
                    if version < 2 {
                        return Err(bad(format!(
                            "line {}: 'generation' is a v2 field in a v1 manifest",
                            no + 2
                        )));
                    }
                    if generation.is_some() {
                        return Err(bad(format!("line {}: duplicate 'generation'", no + 2)));
                    }
                    generation = Some(
                        f.next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad(format!("line {}: bad generation", no + 2)))?,
                    );
                }
                Some("shard") => {
                    let file = f
                        .next()
                        .ok_or_else(|| bad(format!("line {}: shard needs a file", no + 2)))?;
                    if file.contains(['/', '\\']) || file == ".." {
                        return Err(bad(format!(
                            "line {}: shard file must be a plain name, got '{file}'",
                            no + 2
                        )));
                    }
                    let mut num = |what: &str| {
                        f.next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad(format!("line {}: bad {what}", no + 2)))
                    };
                    let lines = num("shard line count")?;
                    let file_bytes = num("shard byte size")?;
                    let crc32 = f
                        .next()
                        .and_then(|v| u32::from_str_radix(v, 16).ok())
                        .ok_or_else(|| bad(format!("line {}: bad shard crc", no + 2)))?;
                    shards.push(ShardMeta {
                        file: file.to_string(),
                        lines,
                        file_bytes,
                        crc32,
                    });
                }
                Some(other) => {
                    return Err(bad(format!("line {}: unknown field '{other}'", no + 2)))
                }
                None => unreachable!("blank lines are skipped"),
            }
        }
        let flavor = flavor.ok_or_else(|| bad("manifest missing 'flavor'"))?;
        if shards.is_empty() {
            return Err(bad("manifest lists no shards"));
        }
        let manifest = ShardManifest::new(flavor, shards).with_generation(generation.unwrap_or(0));
        if let Some(declared) = declared_lines {
            if declared != manifest.total_lines {
                return Err(bad(format!(
                    "manifest says {} lines but shard table sums to {}",
                    declared, manifest.total_lines
                )));
            }
        }
        Ok(manifest)
    }

    /// Write the manifest crash-safely: bytes stream into a dotted temp
    /// name beside `path` and only an fsync-then-rename publishes them.
    /// The manifest is what makes a deck *parse* as a deck, so a pack
    /// killed before this rename leaves no new deck at all — and a pack
    /// killed during it leaves either the old manifest or the complete
    /// new one, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let mut text = Vec::new();
        self.write_to(&mut text)?;
        let mut sink = AtomicFileSink::create(path)?;
        if let Err(e) = sink.append(&text) {
            sink.discard();
            return Err(e);
        }
        sink.commit()
    }

    pub fn load(path: &Path) -> Result<ShardManifest, ZsmilesError> {
        let bytes = std::fs::read(path)?;
        ShardManifest::read_from(&bytes)
    }
}

/// Whether `path` starts with the `.zsm` manifest magic (any version) —
/// the sniff [`DeckReader::open`] uses to dispatch between layouts.
pub fn is_manifest(path: &Path) -> Result<bool, ZsmilesError> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; MANIFEST_MAGIC_PREFIX.len()];
    let mut got = 0;
    while got < head.len() {
        let n = f.read(&mut head[got..])?;
        if n == 0 {
            return Ok(false);
        }
        got += n;
    }
    Ok(head == *MANIFEST_MAGIC_PREFIX.as_bytes())
}

// ---------------------------------------------------------------------------
// Sharded writing
// ---------------------------------------------------------------------------

/// When to cut a new shard. At least one budget must be set; a cut
/// happens before the first line that would exceed it, so `by_lines(n)`
/// shards carry exactly `n` lines each (except the last) and
/// `by_bytes(n)` shards stay at or under `n` raw input bytes — with one
/// unavoidable exception: a single line larger than the byte budget
/// still forms its own (over-budget) shard, because the line is the
/// codec unit and cannot be split.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardPolicy {
    /// Maximum ligand lines per shard.
    pub max_lines: Option<u64>,
    /// Maximum raw input bytes per shard (line bytes + newline; the shard
    /// file is smaller after compression).
    pub max_bytes: Option<u64>,
}

impl ShardPolicy {
    pub fn by_lines(max_lines: u64) -> ShardPolicy {
        ShardPolicy {
            max_lines: Some(max_lines),
            max_bytes: None,
        }
    }

    pub fn by_bytes(max_bytes: u64) -> ShardPolicy {
        ShardPolicy {
            max_lines: None,
            max_bytes: Some(max_bytes),
        }
    }

    fn validate(&self) -> Result<(), ZsmilesError> {
        match (self.max_lines, self.max_bytes) {
            (None, None) | (Some(0), None) | (None, Some(0)) | (Some(0), Some(0)) => {
                Err(bad("shard policy needs a positive line or byte budget"))
            }
            _ => Ok(()),
        }
    }

    /// Would adding one more line of `next_line_bytes` raw bytes (newline
    /// included) to a shard already holding `lines` lines / `raw_bytes`
    /// input bytes overshoot a budget? Predictive, so byte budgets are a
    /// hard cap, not a low-water mark.
    fn would_exceed(&self, lines: u64, raw_bytes: u64, next_line_bytes: u64) -> bool {
        self.max_lines.is_some_and(|n| lines + 1 > n)
            || self
                .max_bytes
                .is_some_and(|n| raw_bytes + next_line_bytes > n)
    }
}

/// What a finished sharded pack reports.
#[derive(Debug, Clone)]
pub struct ShardedPackInfo {
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// The manifest's shard table, in order.
    pub shards: Vec<ShardMeta>,
    /// Total ligand lines across shards.
    pub lines: u64,
    /// Compression accounting across every shard.
    pub stats: CompressStats,
    /// High-water mark of buffered bytes: payload staged by any shard's
    /// writer, or (cross-shard parallel mode) raw shard input held for
    /// the jobs in flight.
    pub peak_buffered_bytes: usize,
}

/// Position of the first `b'\n'` in `hay` — SWAR, eight bytes per probe
/// (the classic zero-byte trick on `word ^ NL`), so the shard writer's
/// line splitting runs at memory speed instead of byte-at-a-time.
#[inline]
fn find_newline(hay: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const NL: u64 = 0x0A0A_0A0A_0A0A_0A0A;
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let word = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte probe"));
        let x = word ^ NL;
        let found = x.wrapping_sub(LO) & !x & HI;
        if found != 0 {
            return Some(i + (found.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == b'\n').map(|p| i + p)
}

/// A complete raw shard cut by the policy, waiting for a worker to
/// compress it (cross-shard parallel mode only).
#[derive(Debug)]
struct PendingShard {
    name: String,
    raw: Vec<u8>,
    lines: u64,
}

/// Streams a deck into a manifest plus N `.zsa` shard files, cutting by a
/// [`ShardPolicy`]. Same input surface as
/// [`crate::writer::ArchiveWriter`]: arbitrary byte slices, lines
/// reassembled across calls.
///
/// # Cross-shard parallelism
///
/// With [`WriterOptions::threads`] == 1 the writer streams each shard
/// through one `ArchiveWriter` at a time in bounded memory. With
/// `threads` = N > 1 it instead stages up to N complete raw shards and
/// compresses them **concurrently** as jobs on the persistent
/// [`WorkerPool`] — each job drives its own independent `ArchiveWriter`
/// (single-threaded inside, since pool jobs must not re-enter the pool)
/// over its own shard file. Shard cut points are decided by the policy on
/// the raw lines, identically in both modes, and manifest rows are
/// stitched in shard order — so the files and manifest are byte-identical
/// to a serial pack.
///
/// Staged raw bytes respect the same 4 × [`WriterOptions::batch_bytes`]
/// budget as the serial writer: once the staged shards plus the shard
/// being cut would exceed it, the staged batch is flushed early — so
/// parallelism degrades gracefully to pipelined packing rather than
/// growing memory with the thread count. (A single shard whose raw bytes
/// exceed the whole budget is still staged whole; the floor of this mode
/// is one complete shard in memory.)
#[derive(Debug)]
pub struct ShardedWriter {
    manifest_path: PathBuf,
    dir: PathBuf,
    stem: String,
    dict: AnyDictionary,
    policy: ShardPolicy,
    opts: WriterOptions,
    /// Cross-shard jobs in flight at once; 1 = serial streaming mode.
    workers: usize,
    /// Serial mode: the shard being streamed (into a temp name; the
    /// shard file appears only when the shard seals cleanly).
    current: Option<ArchiveWriter<AtomicFileSink>>,
    cur_name: String,
    /// Parallel mode: raw bytes of the shard being cut.
    cur_raw: Vec<u8>,
    /// Parallel mode: complete shards staged for the next flush.
    pending: Vec<PendingShard>,
    /// Parallel mode: total raw bytes across `pending`.
    staged_bytes: usize,
    /// Parallel mode: retired raw buffers, reused so steady-state packing
    /// allocates no new shard-sized buffers.
    spare_raw: Vec<Vec<u8>>,
    /// Next shard file number (shards are named in cut order).
    shard_no: usize,
    cur_lines: u64,
    cur_raw_bytes: u64,
    shards: Vec<ShardMeta>,
    /// Shard files published (renamed into place) but whose fsync is
    /// deferred to [`Self::finish`], keeping sync latency off the packing
    /// critical path. All are synced — plus one parent-directory fsync —
    /// before the manifest commits, so the durable ordering (shards
    /// before manifest) is unchanged.
    deferred: Vec<DeferredSync>,
    /// Partial final line carried between `write` calls.
    carry: Vec<u8>,
    stats: CompressStats,
    peak_buffered: usize,
    /// Dataset generation stamped onto the manifest (0 = none; see
    /// [`ShardManifest::with_generation`]).
    generation: u64,
}

impl ShardedWriter {
    /// Start a sharded pack. `manifest_path` names the `.zsm` file;
    /// shards land beside it as `<stem>.00000.zsa`, `<stem>.00001.zsa`, …
    pub fn create(
        manifest_path: &Path,
        dict: AnyDictionary,
        policy: ShardPolicy,
        opts: WriterOptions,
    ) -> Result<ShardedWriter, ZsmilesError> {
        policy.validate()?;
        let dir = manifest_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let stem = manifest_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "deck".to_string());
        let mut w = ShardedWriter {
            manifest_path: manifest_path.to_path_buf(),
            dir,
            stem,
            dict,
            policy,
            opts,
            workers: opts.threads.max(1),
            current: None,
            cur_name: String::new(),
            cur_raw: Vec::new(),
            pending: Vec::new(),
            staged_bytes: 0,
            spare_raw: Vec::new(),
            shard_no: 0,
            cur_lines: 0,
            cur_raw_bytes: 0,
            shards: Vec::new(),
            deferred: Vec::new(),
            carry: Vec::new(),
            stats: CompressStats::default(),
            peak_buffered: 0,
            generation: 0,
        };
        if w.workers == 1 {
            w.open_shard()?;
        }
        Ok(w)
    }

    /// Stamp a dataset generation onto the manifest this pack will write.
    /// Zero (the default) keeps the historical v1 format; nonzero bumps
    /// the manifest to v2 with a `generation` row.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Shards completed so far (shards being written or staged for a
    /// parallel flush are not counted).
    pub fn shards_completed(&self) -> usize {
        self.shards.len()
    }

    fn next_shard_name(&mut self) -> String {
        let name = format!("{}.{:05}.zsa", self.stem, self.shard_no);
        self.shard_no += 1;
        name
    }

    fn open_shard(&mut self) -> Result<(), ZsmilesError> {
        self.cur_name = self.next_shard_name();
        let sink = AtomicFileSink::create(&self.dir.join(&self.cur_name))?;
        self.current = Some(ArchiveWriter::with_options(
            sink,
            self.dict.clone(),
            self.opts,
        )?);
        self.cur_lines = 0;
        self.cur_raw_bytes = 0;
        Ok(())
    }

    /// Finish the shard in progress, atomically publish its file, and
    /// record its manifest row (serial mode).
    fn seal_shard(&mut self) -> Result<(), ZsmilesError> {
        let w = self.current.take().expect("a shard is always open");
        let (sink, info) = w.finish()?;
        self.deferred.push(sink.commit_deferred()?);
        self.stats.merge(&info.stats);
        self.peak_buffered = self.peak_buffered.max(info.peak_buffered_bytes);
        debug_assert_eq!(info.lines as u64, self.cur_lines, "fed lines all landed");
        self.shards.push(ShardMeta {
            file: std::mem::take(&mut self.cur_name),
            lines: info.lines as u64,
            file_bytes: info.container_bytes,
            crc32: info.crc32,
        });
        Ok(())
    }

    /// The writer's raw-staging budget: the same 4 × batch-bytes bound
    /// the serial streaming path promises.
    fn stage_budget(&self) -> usize {
        self.opts.batch_bytes.saturating_mul(4).max(1)
    }

    /// Move the raw shard being cut onto the staging queue, flushing a
    /// full batch of jobs to the pool (parallel mode).
    fn stage_shard(&mut self) -> Result<(), ZsmilesError> {
        let name = self.next_shard_name();
        let mut fresh = self.spare_raw.pop().unwrap_or_default();
        fresh.clear();
        let raw = std::mem::replace(&mut self.cur_raw, fresh);
        self.staged_bytes += raw.len();
        self.peak_buffered = self.peak_buffered.max(self.staged_bytes);
        self.pending.push(PendingShard {
            name,
            raw,
            lines: self.cur_lines,
        });
        self.cur_lines = 0;
        self.cur_raw_bytes = 0;
        if self.pending.len() >= self.workers || self.staged_bytes >= self.stage_budget() {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Compress every staged shard concurrently on the global
    /// [`WorkerPool`], then stitch manifest rows in shard order.
    fn flush_pending(&mut self) -> Result<(), ZsmilesError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        self.staged_bytes = 0;
        let mut slots: Vec<Option<Result<(PackInfo, DeferredSync), ZsmilesError>>> =
            batch.iter().map(|_| None).collect();
        let pool = WorkerPool::global();
        if pool.workers() == 1 || batch.len() == 1 {
            // A one-worker pool (or a one-shard batch) adds nothing but a
            // cross-thread round trip — pack inline on the caller.
            for (shard, slot) in batch.iter().zip(slots.iter_mut()) {
                *slot = Some(pack_one_shard(
                    &self.dir.join(&shard.name),
                    self.dict.clone(),
                    &shard.raw,
                    self.opts.batch_bytes,
                ));
            }
        } else {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = batch
                .iter()
                .zip(slots.iter_mut())
                .map(|(shard, slot)| {
                    let dict = self.dict.clone();
                    let path = self.dir.join(&shard.name);
                    let batch_bytes = self.opts.batch_bytes;
                    let raw: &[u8] = &shard.raw;
                    Box::new(move || {
                        *slot = Some(pack_one_shard(&path, dict, raw, batch_bytes));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scoped_run(jobs);
        }
        for (shard, slot) in batch.iter().zip(slots) {
            let (info, deferred) = slot.expect("every pool job writes its slot")?;
            self.deferred.push(deferred);
            debug_assert_eq!(info.lines as u64, shard.lines, "staged lines all landed");
            self.stats.merge(&info.stats);
            self.peak_buffered = self.peak_buffered.max(info.peak_buffered_bytes);
            self.shards.push(ShardMeta {
                file: shard.name.clone(),
                lines: info.lines as u64,
                file_bytes: info.container_bytes,
                crc32: info.crc32,
            });
        }
        self.spare_raw.extend(batch.into_iter().map(|p| p.raw));
        Ok(())
    }

    /// Route one complete line (no newline) to the current shard, cutting
    /// first if the policy budget is full. Blank lines are skipped — they
    /// produce no archive line in any layout.
    fn feed(&mut self, line: &[u8]) -> Result<(), ZsmilesError> {
        if line.is_empty() {
            return Ok(());
        }
        let cut = self.cur_lines > 0
            && self
                .policy
                .would_exceed(self.cur_lines, self.cur_raw_bytes, line.len() as u64 + 1);
        if self.workers > 1 {
            if cut {
                self.stage_shard()?;
            }
            // Keep the memory contract while a new shard accumulates: if
            // staged raw plus the shard being cut would leave the budget,
            // compress the staged batch now instead of waiting for a full
            // batch of `workers` shards.
            if !self.pending.is_empty()
                && self.staged_bytes + self.cur_raw.len() + line.len() + 1 > self.stage_budget()
            {
                self.flush_pending()?;
            }
            self.cur_raw.extend_from_slice(line);
            self.cur_raw.push(b'\n');
        } else {
            if cut {
                self.seal_shard()?;
                self.open_shard()?;
            }
            self.current
                .as_mut()
                .expect("a shard is always open")
                .write_line(line)?;
        }
        self.cur_lines += 1;
        self.cur_raw_bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Parallel-mode bulk ingestion. `chunk` is whole lines — every line
    /// newline-terminated. Runs the same per-line policy accounting and
    /// cut/blank decisions as [`Self::feed`] (so the output is
    /// byte-identical), but copies maximal spans of kept lines into the
    /// raw shard with one `memcpy` each instead of two small appends per
    /// line — the difference between the staged path losing to the serial
    /// streaming path and beating it.
    fn feed_bulk(&mut self, chunk: &[u8]) -> Result<(), ZsmilesError> {
        let mut span_start = 0usize;
        let mut pos = 0usize;
        while pos < chunk.len() {
            let line_len =
                find_newline(&chunk[pos..]).expect("feed_bulk takes newline-terminated lines");
            if line_len == 0 {
                // Blank line: keep the span before it, drop the newline.
                self.cur_raw.extend_from_slice(&chunk[span_start..pos]);
                span_start = pos + 1;
            } else {
                if self.cur_lines > 0
                    && self.policy.would_exceed(
                        self.cur_lines,
                        self.cur_raw_bytes,
                        line_len as u64 + 1,
                    )
                {
                    self.cur_raw.extend_from_slice(&chunk[span_start..pos]);
                    span_start = pos;
                    if !self.pending.is_empty()
                        && self.staged_bytes + self.cur_raw.len() > self.stage_budget()
                    {
                        self.flush_pending()?;
                    }
                    self.stage_shard()?;
                }
                self.cur_lines += 1;
                self.cur_raw_bytes += line_len as u64 + 1;
            }
            pos += line_len + 1;
        }
        self.cur_raw.extend_from_slice(&chunk[span_start..]);
        // Memory contract, once per chunk: staged raw plus the shard
        // being cut must not sit past the budget between `write` calls.
        if !self.pending.is_empty() && self.staged_bytes + self.cur_raw.len() > self.stage_budget()
        {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Accept raw deck bytes (newline-separated SMILES, lines may
    /// straddle calls).
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), ZsmilesError> {
        let mut rest = bytes;
        if !self.carry.is_empty() {
            match find_newline(rest) {
                Some(p) => {
                    self.carry.extend_from_slice(&rest[..p]);
                    let line = std::mem::take(&mut self.carry);
                    self.feed(&line)?;
                    rest = &rest[p + 1..];
                }
                None => {
                    self.carry.extend_from_slice(rest);
                    return Ok(());
                }
            }
        }
        if self.workers > 1 {
            let end = rest.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            self.feed_bulk(&rest[..end])?;
            self.carry.extend_from_slice(&rest[end..]);
            return Ok(());
        }
        while let Some(p) = find_newline(rest) {
            self.feed(&rest[..p])?;
            rest = &rest[p + 1..];
        }
        self.carry.extend_from_slice(rest);
        Ok(())
    }

    /// Accept one line (no embedded newline).
    pub fn write_line(&mut self, line: &[u8]) -> Result<(), ZsmilesError> {
        debug_assert!(
            self.carry.is_empty(),
            "mixing write and write_line mid-line"
        );
        self.feed(line)
    }

    /// Seal the last shard, write the manifest, and report the pack.
    pub fn finish(mut self) -> Result<ShardedPackInfo, ZsmilesError> {
        if !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.feed(&line)?;
        }
        // Always seal — an empty deck still yields one (empty) shard, so
        // the manifest has a dictionary to point at.
        if self.workers > 1 {
            if self.cur_lines > 0 || self.shard_no == 0 {
                self.stage_shard()?;
            }
            self.flush_pending()?;
        } else {
            self.seal_shard()?;
        }
        // Deferred-durability pass: every published shard is fsynced here,
        // then the directory once, *before* the manifest commits — so the
        // manifest (the atomic commit point) never points at a shard that
        // could vanish on power loss. One sync sweep at the end instead of
        // one per shard keeps fsync latency off the packing loop.
        for deferred in std::mem::take(&mut self.deferred) {
            deferred.sync()?;
        }
        sync_parent_dir(&self.manifest_path)?;
        let manifest =
            ShardManifest::new(self.dict.flavor(), self.shards).with_generation(self.generation);
        manifest.save(&self.manifest_path)?;
        Ok(ShardedPackInfo {
            manifest_path: self.manifest_path,
            lines: manifest.total_lines(),
            shards: manifest.shards().to_vec(),
            stats: self.stats,
            peak_buffered_bytes: self.peak_buffered,
        })
    }
}

/// Compress one staged raw shard into its own `.zsa` file. Runs as a
/// [`WorkerPool`] job, so the inner writer is single-threaded — pool jobs
/// must not call back into the pool (see the pool's deadlock contract);
/// the parallelism here is *across* shards. `ArchiveWriter` output does
/// not depend on its thread count, so the file is byte-identical to the
/// serial path's.
fn pack_one_shard(
    path: &Path,
    dict: AnyDictionary,
    raw: &[u8],
    batch_bytes: usize,
) -> Result<(PackInfo, DeferredSync), ZsmilesError> {
    let sink = AtomicFileSink::create(path)?;
    let mut w = ArchiveWriter::with_options(
        sink,
        dict,
        WriterOptions {
            threads: 1,
            batch_bytes,
        },
    )?;
    w.write(raw)?;
    let (sink, info) = w.finish()?;
    let deferred = sink.commit_deferred()?;
    Ok((info, deferred))
}

// ---------------------------------------------------------------------------
// Sharded reading
// ---------------------------------------------------------------------------

/// A shard a degraded-mode open refused to serve, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// Position in the manifest's shard table.
    pub index: usize,
    /// The shard's manifest file name.
    pub file: String,
    /// The integrity failure that quarantined it (a rendered
    /// [`ZsmilesError`]).
    pub reason: String,
}

/// A sharded archive opened for random access: the manifest plus one
/// out-of-core [`ArchiveReader`] per shard (metadata only — no payload is
/// resident). Global line numbers route across shards by binary search on
/// the cumulative line table.
///
/// A reader from [`ShardedReader::open`] is fully healthy: every shard
/// passed its cross-checks or the open failed. A reader from
/// [`ShardedReader::open_degraded`] may instead carry quarantined shards
/// — their slots hold no reader, their lines answer with
/// [`ZsmilesError::ShardUnavailable`], and everything else keeps serving.
#[derive(Debug)]
pub struct ShardedReader {
    manifest: ShardManifest,
    /// One slot per manifest row; `None` = quarantined (degraded opens
    /// only — a healthy open has every slot filled).
    readers: Vec<Option<ArchiveReader<AutoSource>>>,
    quarantined: Vec<QuarantinedShard>,
    /// `starts[k]` = global line number of shard `k`'s first line.
    starts: Vec<u64>,
    total: usize,
    /// Index of the first healthy shard — where `dictionary()` reads
    /// from (shard 0 itself may be quarantined).
    dict_shard: usize,
}

/// The per-shard integrity cross-checks both open modes run: flavor,
/// line count, file size and stored CRC against the manifest row — all
/// from metadata; no payload byte is read.
pub(crate) fn check_shard_meta(
    reader: &ArchiveReader<AutoSource>,
    meta: &ShardMeta,
    flavor: DictFlavor,
) -> Result<(), ZsmilesError> {
    if reader.flavor() != flavor {
        return Err(bad(format!(
            "shard {}: flavor {} does not match manifest {}",
            meta.file,
            reader.flavor().name(),
            flavor.name()
        )));
    }
    if reader.len() as u64 != meta.lines {
        return Err(bad(format!(
            "shard {}: stores {} lines, manifest says {}",
            meta.file,
            reader.len(),
            meta.lines
        )));
    }
    if reader.source().len() != meta.file_bytes {
        return Err(bad(format!(
            "shard {}: {} bytes on disk, manifest says {}",
            meta.file,
            reader.source().len(),
            meta.file_bytes
        )));
    }
    if reader.container_crc() != meta.crc32 {
        return Err(bad(format!(
            "shard {}: container crc {:08x}, manifest says {:08x}",
            meta.file,
            reader.container_crc(),
            meta.crc32
        )));
    }
    Ok(())
}

impl ShardedReader {
    /// Open a `.zsm` manifest and every shard it lists, cross-checking
    /// each shard's flavor, line count, file size, stored CRC and
    /// embedded dictionary against the manifest — all from metadata; no
    /// payload byte is read. Any failing shard fails the open.
    pub fn open(manifest_path: &Path) -> Result<ShardedReader, ZsmilesError> {
        ShardedReader::open_with(manifest_path, &DeckOptions::default())
    }

    /// [`ShardedReader::open`] with explicit [`DeckOptions`] (e.g. a
    /// private [`BlockCache`] for deterministic retirement).
    pub fn open_with(
        manifest_path: &Path,
        options: &DeckOptions,
    ) -> Result<ShardedReader, ZsmilesError> {
        ShardedReader::open_inner(manifest_path, options, false)
    }

    /// Open a deck *around* its damage: shards that fail to open or fail
    /// a cross-check are quarantined instead of failing the whole open,
    /// and their lines answer [`ZsmilesError::ShardUnavailable`]. The
    /// global line numbering is unchanged — line `i` means the same
    /// ligand it always did, served or not. Fails only when no shard at
    /// all is servable (there is then no dictionary to decode with).
    pub fn open_degraded(manifest_path: &Path) -> Result<ShardedReader, ZsmilesError> {
        ShardedReader::open_degraded_with(manifest_path, &DeckOptions::default())
    }

    /// [`ShardedReader::open_degraded`] with explicit [`DeckOptions`].
    pub fn open_degraded_with(
        manifest_path: &Path,
        options: &DeckOptions,
    ) -> Result<ShardedReader, ZsmilesError> {
        ShardedReader::open_inner(manifest_path, options, true)
    }

    fn open_inner(
        manifest_path: &Path,
        options: &DeckOptions,
        degraded: bool,
    ) -> Result<ShardedReader, ZsmilesError> {
        let manifest = ShardManifest::load(manifest_path)?;
        let dir = manifest_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let mut readers: Vec<Option<ArchiveReader<AutoSource>>> =
            Vec::with_capacity(manifest.shards().len());
        let mut quarantined = Vec::new();
        let mut starts = Vec::with_capacity(manifest.shards().len());
        let mut at = 0u64;
        // Reference dictionary: the first healthy shard's, remembered
        // with its file name so mismatch errors can cite it.
        let mut first_dict: Option<(String, Vec<u8>)> = None;
        let mut dict_shard = None;
        for (index, meta) in manifest.shards().iter().enumerate() {
            let opened = options
                .open_source(&dir.join(&meta.file))
                .and_then(ArchiveReader::from_source)
                .and_then(|reader| {
                    check_shard_meta(&reader, meta, manifest.flavor())?;
                    let mut dict_bytes = Vec::new();
                    reader.dictionary().write(&mut dict_bytes)?;
                    match &first_dict {
                        None => first_dict = Some((meta.file.clone(), dict_bytes)),
                        Some((ref_file, first)) if *first != dict_bytes => {
                            return Err(bad(format!(
                                "shard {}: embedded dictionary differs from shard {ref_file}",
                                meta.file
                            )))
                        }
                        Some(_) => {}
                    }
                    Ok(reader)
                });
            match opened {
                Ok(reader) => {
                    dict_shard.get_or_insert(index);
                    readers.push(Some(reader));
                }
                Err(e) if degraded => {
                    quarantined.push(QuarantinedShard {
                        index,
                        file: meta.file.clone(),
                        reason: e.to_string(),
                    });
                    readers.push(None);
                }
                Err(e) => return Err(e),
            }
            starts.push(at);
            at += meta.lines;
        }
        let Some(dict_shard) = dict_shard else {
            return Err(bad(format!(
                "every shard of {} is unservable ({} quarantined); nothing to serve",
                manifest_path.display(),
                quarantined.len()
            )));
        };
        Ok(ShardedReader {
            total: at as usize,
            manifest,
            readers,
            quarantined,
            starts,
            dict_shard,
        })
    }

    /// Total ligand lines across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Which dictionary flavour the shards embed.
    pub fn flavor(&self) -> DictFlavor {
        self.manifest.flavor()
    }

    /// The embedded dictionary (identical in every healthy shard;
    /// checked at open — served from the first healthy shard, since a
    /// degraded open may have quarantined shard 0).
    pub fn dictionary(&self) -> &AnyDictionary {
        self.readers[self.dict_shard]
            .as_ref()
            .expect("dict_shard indexes a healthy shard")
            .dictionary()
    }

    /// Shards a degraded open refused to serve (empty for healthy decks
    /// and for [`ShardedReader::open`], which fails instead).
    pub fn quarantined(&self) -> &[QuarantinedShard] {
        &self.quarantined
    }

    /// Whether any shard is quarantined.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Lines that currently answer [`ZsmilesError::ShardUnavailable`]
    /// (the quarantined shards' manifest line counts).
    pub fn unavailable_lines(&self) -> u64 {
        self.quarantined
            .iter()
            .map(|q| self.manifest.shards()[q.index].lines)
            .sum()
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// The dataset generation stamped on the manifest (0 for v1
    /// manifests, which predate the row).
    pub fn generation(&self) -> u64 {
        self.manifest.generation()
    }

    /// Drop every block this deck's shards hold in their block cache
    /// (when cache-backed; a no-op for mmap). Returns how many blocks
    /// were released. The serving layer calls this when a generation is
    /// retired so the flipped-away deck stops competing for cache budget.
    pub fn retire_cached_blocks(&self) -> u64 {
        self.healthy()
            .map(|r| r.source().retire_cached_blocks())
            .sum()
    }

    /// Number of shards the manifest lists (quarantined ones included —
    /// they still own their line ranges).
    pub fn shard_count(&self) -> usize {
        self.readers.len()
    }

    /// The healthy per-shard readers, in manifest order (quarantined
    /// slots skipped).
    fn healthy(&self) -> impl Iterator<Item = &ArchiveReader<AutoSource>> {
        self.readers.iter().flatten()
    }

    /// The reader for manifest shard `index`, `None` when quarantined.
    pub fn shard_reader(&self, index: usize) -> Option<&ArchiveReader<AutoSource>> {
        self.readers.get(index).and_then(Option::as_ref)
    }

    /// The healthy shard serving line `i`, or the typed routing error.
    fn shard_for_line(
        &self,
        s: usize,
        line: usize,
    ) -> Result<&ArchiveReader<AutoSource>, ZsmilesError> {
        self.readers[s]
            .as_ref()
            .ok_or_else(|| ZsmilesError::ShardUnavailable {
                shard: self.manifest.shards()[s].file.clone(),
                line,
            })
    }

    /// Bytes of address space mapped across all shards (0 when the
    /// platform fell back to cached file I/O).
    pub fn bytes_mapped(&self) -> u64 {
        self.healthy().map(|r| r.source().bytes_mapped()).sum()
    }

    /// Aggregate `(hits, misses)` of the shards' sources against the
    /// shared block cache; `None` when every shard is mmap-backed.
    pub fn cache_counters(&self) -> Option<(u64, u64)> {
        self.healthy()
            .filter_map(|r| r.source().cache_counters())
            .reduce(|(h, m), (h2, m2)| (h + h2, m + m2))
    }

    /// Compressed payload bytes across all healthy shards (not resident).
    pub fn payload_bytes(&self) -> u64 {
        self.healthy().map(|r| r.payload_bytes()).sum()
    }

    /// Metadata bytes transferred at open, across all healthy shards.
    pub fn metadata_bytes(&self) -> u64 {
        self.healthy().map(|r| r.metadata_bytes()).sum()
    }

    fn check_line(&self, i: usize) -> Result<(), ZsmilesError> {
        if i >= self.total {
            return Err(ZsmilesError::LineOutOfRange {
                line: i,
                len: self.total,
            });
        }
        Ok(())
    }

    /// Which shard holds global line `i`, and the line's shard-local
    /// index. O(log #shards); empty shards are skipped by construction
    /// (their cumulative start equals their successor's).
    fn locate(&self, i: usize) -> (usize, usize) {
        let s = self.starts.partition_point(|&st| st <= i as u64) - 1;
        (s, i - self.starts[s] as usize)
    }

    /// The compressed bytes of global ligand `i` — one positioned read in
    /// one shard.
    pub fn compressed_line(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.check_line(i)?;
        let (s, local) = self.locate(i);
        self.shard_for_line(s, i)?.compressed_line(local)
    }

    /// Decompress global ligand `i` — the paper's random-access read,
    /// routed to the owning shard.
    pub fn get(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.check_line(i)?;
        let (s, local) = self.locate(i);
        self.shard_for_line(s, i)?.get(local)
    }

    /// Decompress a contiguous run of global ligands: one batched
    /// [`ArchiveReader::get_range`] per shard the run crosses.
    pub fn get_range(&self, lines: Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        if lines.end > self.total {
            return Err(ZsmilesError::LineOutOfRange {
                line: lines.end.saturating_sub(1),
                len: self.total,
            });
        }
        let mut out = Vec::with_capacity(lines.len());
        let mut i = lines.start;
        while i < lines.end {
            let (s, local) = self.locate(i);
            let reader = self.shard_for_line(s, i)?;
            let take = (reader.len() - local).min(lines.end - i);
            out.extend(reader.get_range(local..local + take)?);
            i += take;
        }
        Ok(out)
    }

    /// Decompress an arbitrary set of global ligands in the order given,
    /// reusing one decoder per shard touched.
    pub fn get_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        let mut decoders: Vec<Option<Box<dyn LineDecoder + '_>>> =
            (0..self.readers.len()).map(|_| None).collect();
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            self.check_line(i)?;
            let (s, local) = self.locate(i);
            let reader = self.shard_for_line(s, i)?;
            let line = reader.compressed_line(local)?;
            let dec = decoders[s].get_or_insert_with(|| reader.dictionary().boxed_decoder());
            let mut smiles = Vec::with_capacity(line.len() * 3);
            dec.decode_line(&line, &mut smiles)?;
            out.push(smiles);
        }
        Ok(out)
    }

    /// Iterate every ligand in global order, shard by shard, reading each
    /// shard's payload in batches of
    /// [`crate::reader::DEFAULT_BATCH_BYTES`].
    pub fn lines(&self) -> ShardedLines<'_> {
        self.lines_batched(DEFAULT_BATCH_BYTES)
    }

    /// [`ShardedReader::lines`] with an explicit per-batch byte budget.
    pub fn lines_batched(&self, batch_bytes: usize) -> ShardedLines<'_> {
        ShardedLines {
            reader: self,
            shard: 0,
            inner: None,
            batch_bytes,
        }
    }

    /// Stream-decompress every shard in order into `w` — constant memory
    /// in the archive size, same contract as
    /// [`ArchiveReader::unpack_to`].
    pub fn unpack_to<W: Write>(
        &self,
        mut w: W,
        threads: usize,
        chunk_bytes: usize,
    ) -> Result<crate::decompress::DecompressStats, ZsmilesError> {
        let mut stats = crate::decompress::DecompressStats::default();
        for s in 0..self.readers.len() {
            let r = self.shard_for_line(s, self.starts[s] as usize)?;
            let s = r.unpack_to(&mut w, threads, chunk_bytes)?;
            stats.lines += s.lines;
            stats.in_bytes += s.in_bytes;
            stats.out_bytes += s.out_bytes;
        }
        w.flush()?;
        Ok(stats)
    }

    /// Verify every shard's CRC32 end to end, streaming each in bounded
    /// memory. On a degraded deck the first quarantined shard fails the
    /// verify (its bytes cannot be vouched for).
    pub fn verify(&self) -> Result<(), ZsmilesError> {
        for s in 0..self.readers.len() {
            self.shard_for_line(s, self.starts[s] as usize)?.verify()?;
        }
        Ok(())
    }
}

/// Batched in-order iterator over every decoded line of a sharded
/// archive: each shard's [`LineIter`] in manifest order.
pub struct ShardedLines<'r> {
    reader: &'r ShardedReader,
    shard: usize,
    inner: Option<LineIter<'r, AutoSource>>,
    batch_bytes: usize,
}

impl Iterator for ShardedLines<'_> {
    type Item = Result<Vec<u8>, ZsmilesError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(it) = self.inner.as_mut() {
                if let Some(item) = it.next() {
                    return Some(item);
                }
                self.inner = None;
            }
            if self.shard >= self.reader.readers.len() {
                return None;
            }
            let s = self.shard;
            self.shard += 1;
            match self
                .reader
                .shard_for_line(s, self.reader.starts[s] as usize)
            {
                Ok(r) => self.inner = Some(r.lines_batched(self.batch_bytes)),
                // A quarantined shard ends the stream with its typed
                // error — the caller cannot silently skip lines.
                Err(e) => {
                    self.shard = self.reader.readers.len();
                    return Some(Err(e));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layout dispatch
// ---------------------------------------------------------------------------

/// Either archive layout behind one read surface: a single `.zsa` file or
/// a `.zsm` manifest with shards, sniffed from the file's first bytes.
/// Every consumer that accepts "an archive path" (the CLI's `get` /
/// `unpack` / `inspect`, screening hit fetches) opens through this and
/// works unchanged against both.
#[derive(Debug)]
pub enum DeckReader {
    Single(Box<ArchiveReader<AutoSource>>),
    Sharded(Box<ShardedReader>),
}

impl DeckReader {
    /// Open `path` as whichever layout it is. Archive files are served
    /// through [`AutoSource`]: a zero-syscall mmap where the platform has
    /// one, shared-block-cache positioned I/O otherwise.
    pub fn open(path: &Path) -> Result<DeckReader, ZsmilesError> {
        DeckReader::open_with(path, &DeckOptions::default())
    }

    /// [`DeckReader::open`] with explicit [`DeckOptions`] (e.g. a private
    /// [`BlockCache`] so a retiring generation's blocks can be dropped
    /// deterministically).
    pub fn open_with(path: &Path, options: &DeckOptions) -> Result<DeckReader, ZsmilesError> {
        if is_manifest(path)? {
            Ok(DeckReader::Sharded(Box::new(ShardedReader::open_with(
                path, options,
            )?)))
        } else {
            Ok(DeckReader::Single(Box::new(ArchiveReader::from_source(
                options.open_source(path)?,
            )?)))
        }
    }

    /// [`DeckReader::open`] that survives damaged shards: a `.zsm` deck
    /// opens through [`ShardedReader::open_degraded_with`] (bad shards
    /// quarantined, the rest served), a single `.zsa` opens normally —
    /// one file is the whole deck, so there is nothing to degrade to.
    pub fn open_degraded(path: &Path, options: &DeckOptions) -> Result<DeckReader, ZsmilesError> {
        if is_manifest(path)? {
            Ok(DeckReader::Sharded(Box::new(
                ShardedReader::open_degraded_with(path, options)?,
            )))
        } else {
            Ok(DeckReader::Single(Box::new(ArchiveReader::from_source(
                options.open_source(path)?,
            )?)))
        }
    }

    /// Whether any shard was quarantined at open (always false for
    /// single-file decks and healthy opens).
    pub fn is_degraded(&self) -> bool {
        match self {
            DeckReader::Single(_) => false,
            DeckReader::Sharded(r) => r.is_degraded(),
        }
    }

    /// The quarantined shards (empty unless opened degraded over damage).
    pub fn quarantined(&self) -> &[QuarantinedShard] {
        match self {
            DeckReader::Single(_) => &[],
            DeckReader::Sharded(r) => r.quarantined(),
        }
    }

    /// Lines currently answering [`ZsmilesError::ShardUnavailable`].
    pub fn unavailable_lines(&self) -> u64 {
        match self {
            DeckReader::Single(_) => 0,
            DeckReader::Sharded(r) => r.unavailable_lines(),
        }
    }

    /// The dataset generation this deck declares: the manifest's
    /// `generation` row for sharded decks, 0 for single-file archives
    /// and v1 manifests (which have no such row).
    pub fn generation(&self) -> u64 {
        match self {
            DeckReader::Single(_) => 0,
            DeckReader::Sharded(r) => r.generation(),
        }
    }

    /// Drop every block this deck holds in its block cache (no-op for
    /// mmap-backed files); returns how many blocks were released.
    pub fn retire_cached_blocks(&self) -> u64 {
        match self {
            DeckReader::Single(r) => r.source().retire_cached_blocks(),
            DeckReader::Sharded(r) => r.retire_cached_blocks(),
        }
    }

    /// Bytes of address space mapped across the deck's files (0 when the
    /// platform fell back to cached file I/O).
    pub fn bytes_mapped(&self) -> u64 {
        match self {
            DeckReader::Single(r) => r.source().bytes_mapped(),
            DeckReader::Sharded(r) => r.bytes_mapped(),
        }
    }

    /// Aggregate `(hits, misses)` against the shared block cache;
    /// `None` when every file is mmap-backed.
    pub fn cache_counters(&self) -> Option<(u64, u64)> {
        match self {
            DeckReader::Single(r) => r.source().cache_counters(),
            DeckReader::Sharded(r) => r.cache_counters(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            DeckReader::Single(r) => r.len(),
            DeckReader::Sharded(r) => r.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn flavor(&self) -> DictFlavor {
        match self {
            DeckReader::Single(r) => r.flavor(),
            DeckReader::Sharded(r) => r.flavor(),
        }
    }

    pub fn dictionary(&self) -> &AnyDictionary {
        match self {
            DeckReader::Single(r) => r.dictionary(),
            DeckReader::Sharded(r) => r.dictionary(),
        }
    }

    /// Number of `.zsa` files behind this deck (1 for the single layout).
    pub fn shard_count(&self) -> usize {
        match self {
            DeckReader::Single(_) => 1,
            DeckReader::Sharded(r) => r.shard_count(),
        }
    }

    /// Compressed payload bytes (not resident).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            DeckReader::Single(r) => r.payload_bytes(),
            DeckReader::Sharded(r) => r.payload_bytes(),
        }
    }

    /// Metadata bytes transferred at open.
    pub fn metadata_bytes(&self) -> u64 {
        match self {
            DeckReader::Single(r) => r.metadata_bytes(),
            DeckReader::Sharded(r) => r.metadata_bytes(),
        }
    }

    pub fn get(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.get(i),
            DeckReader::Sharded(r) => r.get(i),
        }
    }

    pub fn compressed_line(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.compressed_line(i),
            DeckReader::Sharded(r) => r.compressed_line(i),
        }
    }

    pub fn get_range(&self, lines: Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.get_range(lines),
            DeckReader::Sharded(r) => r.get_range(lines),
        }
    }

    pub fn get_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.get_many(indices),
            DeckReader::Sharded(r) => r.get_many(indices),
        }
    }

    pub fn unpack_to<W: Write>(
        &self,
        w: W,
        threads: usize,
        chunk_bytes: usize,
    ) -> Result<crate::decompress::DecompressStats, ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.unpack_to(w, threads, chunk_bytes),
            DeckReader::Sharded(r) => r.unpack_to(w, threads, chunk_bytes),
        }
    }

    pub fn verify(&self) -> Result<(), ZsmilesError> {
        match self {
            DeckReader::Single(r) => r.verify(),
            DeckReader::Sharded(r) => r.verify(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Archive;
    use crate::dict::builder::DictBuilder;
    use crate::wide::WideDictBuilder;

    fn deck_lines() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 5] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(120).collect()
    }

    fn deck_bytes() -> Vec<u8> {
        deck_lines()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect()
    }

    fn dict(wide: bool) -> AnyDictionary {
        let base = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        };
        if wide {
            AnyDictionary::Wide(Box::new(
                WideDictBuilder {
                    base,
                    wide_size: 32,
                }
                .train(deck_lines())
                .unwrap(),
            ))
        } else {
            AnyDictionary::Base(Box::new(base.train(deck_lines()).unwrap()))
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zsmiles_shard_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pack_sharded(dir: &Path, wide: bool, policy: ShardPolicy) -> ShardedPackInfo {
        let mut w = ShardedWriter::create(
            &dir.join("deck.zsm"),
            dict(wide),
            policy,
            WriterOptions {
                threads: 2,
                batch_bytes: 128,
            },
        )
        .unwrap();
        // Awkward slicing on purpose: lines straddle write calls.
        for chunk in deck_bytes().chunks(7) {
            w.write(chunk).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn manifest_text_round_trips() {
        let m = ShardManifest::new(
            DictFlavor::Wide,
            vec![
                ShardMeta {
                    file: "deck.00000.zsa".into(),
                    lines: 10,
                    file_bytes: 1234,
                    crc32: 0x9AB3F2E1,
                },
                ShardMeta {
                    file: "deck.00001.zsa".into(),
                    lines: 3,
                    file_bytes: 987,
                    crc32: 0x0000_0001,
                },
            ],
        );
        let mut raw = Vec::new();
        m.write_to(&mut raw).unwrap();
        let text = String::from_utf8(raw.clone()).unwrap();
        assert!(text.starts_with(MANIFEST_MAGIC), "readable text manifest");
        assert!(text.contains("lines 13"));
        let back = ShardManifest::read_from(&raw).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_lines(), 13);
    }

    #[test]
    fn manifest_rejects_garbage_and_inconsistency() {
        assert!(ShardManifest::read_from(b"not a manifest").is_err());
        assert!(ShardManifest::read_from(b"#zsmiles-shards v1\nflavor base\n").is_err());
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v1\nflavor purple\nshard a.zsa 1 2 03\n"
        )
        .is_err());
        // Declared total disagrees with the shard table.
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v1\nflavor base\nlines 5\nshard a.zsa 1 2 03\n"
        )
        .is_err());
        // Path traversal in shard names is rejected.
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v1\nflavor base\nshard ../evil.zsa 1 2 03\n"
        )
        .is_err());
        // Comments and blank lines are fine.
        let ok = ShardManifest::read_from(
            b"#zsmiles-shards v1\n# comment\n\nflavor base\nshard a.zsa 1 2 0000aaff\n",
        )
        .unwrap();
        assert_eq!(ok.shards().len(), 1);
        assert_eq!(ok.shards()[0].crc32, 0xAAFF);
    }

    #[test]
    fn manifest_generation_round_trips_as_v2() {
        let shards = vec![ShardMeta {
            file: "deck.00000.zsa".into(),
            lines: 4,
            file_bytes: 99,
            crc32: 0xDEAD,
        }];
        // Generation 0 stays byte-identical to the historical v1 format.
        let v1 = ShardManifest::new(DictFlavor::Base, shards.clone());
        let mut raw = Vec::new();
        v1.write_to(&mut raw).unwrap();
        let text = String::from_utf8(raw.clone()).unwrap();
        assert!(text.starts_with(MANIFEST_MAGIC), "v1 magic kept");
        assert!(!text.contains("generation"), "no generation row at 0");
        assert_eq!(ShardManifest::read_from(&raw).unwrap().generation(), 0);

        // A nonzero generation bumps the magic to v2 and round-trips.
        let v2 = ShardManifest::new(DictFlavor::Base, shards).with_generation(7);
        let mut raw = Vec::new();
        v2.write_to(&mut raw).unwrap();
        let text = String::from_utf8(raw.clone()).unwrap();
        assert!(text.starts_with(MANIFEST_MAGIC_V2), "v2 magic");
        assert!(text.contains("generation 7"));
        let back = ShardManifest::read_from(&raw).unwrap();
        assert_eq!(back, v2);
        assert_eq!(back.generation(), 7);
    }

    #[test]
    fn manifest_version_gate_is_strict() {
        // `generation` in a v1 manifest is an error, not silently read.
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v1\nflavor base\ngeneration 3\nshard a.zsa 1 2 03\n"
        )
        .is_err());
        // An unknown future version is refused up front.
        assert!(
            ShardManifest::read_from(b"#zsmiles-shards v9\nflavor base\nshard a.zsa 1 2 03\n")
                .is_err()
        );
        // Duplicate and malformed generation rows are refused.
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v2\nflavor base\ngeneration 1\ngeneration 2\nshard a.zsa 1 2 03\n"
        )
        .is_err());
        assert!(ShardManifest::read_from(
            b"#zsmiles-shards v2\nflavor base\ngeneration x\nshard a.zsa 1 2 03\n"
        )
        .is_err());
        // A v2 manifest without the optional row reads as generation 0.
        let ok = ShardManifest::read_from(b"#zsmiles-shards v2\nflavor base\nshard a.zsa 1 2 03\n")
            .unwrap();
        assert_eq!(ok.generation(), 0);
    }

    #[test]
    fn sharded_writer_stamps_generation_through_to_readers() {
        let dir = tmpdir("gen");
        let mut w = ShardedWriter::create(
            &dir.join("deck.zsm"),
            dict(false),
            ShardPolicy::by_lines(50),
            WriterOptions::default(),
        )
        .unwrap();
        w.set_generation(42);
        w.write(&deck_bytes()).unwrap();
        w.finish().unwrap();

        let sharded = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        assert_eq!(sharded.generation(), 42);
        let deck = DeckReader::open(&dir.join("deck.zsm")).unwrap();
        assert_eq!(deck.generation(), 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_pack_matches_single_file_pack_line_for_line() {
        for wide in [false, true] {
            let dir = tmpdir(if wide { "idw" } else { "idb" });
            let info = pack_sharded(&dir, wide, ShardPolicy::by_lines(50));
            assert_eq!(info.lines, 120);
            assert_eq!(info.shards.len(), 3, "120 lines at 50/shard");
            assert_eq!(info.shards[0].lines, 50);
            assert_eq!(info.shards[2].lines, 20);

            let single = Archive::pack(dict(wide), &deck_bytes(), 2);
            let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
            assert_eq!(reader.len(), single.len());
            assert_eq!(reader.flavor(), single.flavor());
            reader.verify().unwrap();
            for i in [0usize, 49, 50, 51, 99, 100, 119] {
                assert_eq!(
                    reader.get(i).unwrap(),
                    single.get(i).unwrap(),
                    "wide={wide} line {i}"
                );
                assert_eq!(
                    reader.compressed_line(i).unwrap(),
                    single.compressed_line(i).unwrap(),
                    "wide={wide} line {i}"
                );
            }
            // Ranges and hit lists spanning shard boundaries.
            assert_eq!(
                reader.get_range(45..105).unwrap(),
                single.get_range(45..105).unwrap()
            );
            let hits = [99usize, 0, 50, 119, 50];
            assert_eq!(
                reader.get_many(&hits).unwrap(),
                single.get_many(&hits).unwrap()
            );
            // Full iteration and streaming unpack.
            let streamed: Result<Vec<Vec<u8>>, _> = reader.lines_batched(64).collect();
            assert_eq!(streamed.unwrap(), deck_lines());
            let mut out = Vec::new();
            reader.unpack_to(&mut out, 2, 1000).unwrap();
            assert_eq!(out, deck_bytes());

            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn byte_budget_policy_cuts_and_boundary_on_last_line_is_clean() {
        let dir = tmpdir("bytes");
        let info = pack_sharded(&dir, false, ShardPolicy::by_bytes(700));
        assert!(info.shards.len() > 1, "700-byte budget forces cuts");
        let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        assert_eq!(reader.len(), 120);
        // The byte budget is a hard cap: every shard's raw input (line
        // bytes + newlines) stays at or under it — no line in the deck
        // exceeds the budget on its own, so no overshoot is excusable.
        let mut line = 0usize;
        for meta in reader.manifest().shards() {
            let raw: u64 = (line..line + meta.lines as usize)
                .map(|i| deck_lines()[i].len() as u64 + 1)
                .sum();
            assert!(
                raw <= 700,
                "shard {} holds {} raw bytes > 700",
                meta.file,
                raw
            );
            line += meta.lines as usize;
        }
        std::fs::remove_dir_all(&dir).ok();

        // A single line larger than the budget still forms its own shard.
        let dir = tmpdir("oversize");
        let mut w = ShardedWriter::create(
            &dir.join("deck.zsm"),
            dict(false),
            ShardPolicy::by_bytes(10),
            WriterOptions::default(),
        )
        .unwrap();
        w.write(b"CCO\nC1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2\nCCN(CC)CC\n")
            .unwrap();
        let info = w.finish().unwrap();
        assert_eq!(info.lines, 3);
        assert_eq!(
            info.shards.len(),
            3,
            "each line over/at budget gets its own shard"
        );
        let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        assert_eq!(
            reader.get(1).unwrap(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2".to_vec()
        );
        std::fs::remove_dir_all(&dir).ok();

        // A budget that divides the deck exactly: no trailing empty shard.
        let dir = tmpdir("exact");
        let info = pack_sharded(&dir, false, ShardPolicy::by_lines(60));
        assert_eq!(info.shards.len(), 2);
        assert_eq!(info.shards[1].lines, 60);
        let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        assert_eq!(reader.get(119).unwrap(), deck_lines()[119]);
        assert!(matches!(
            reader.get(120).unwrap_err(),
            ZsmilesError::LineOutOfRange {
                line: 120,
                len: 120
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_cross_shard_pack_is_byte_identical_to_serial() {
        let serial_dir = tmpdir("par_ref");
        let serial = pack_sharded(&serial_dir, false, ShardPolicy::by_lines(17));
        for threads in [3usize, 7] {
            let dir = tmpdir(&format!("par_{threads}"));
            let mut w = ShardedWriter::create(
                &dir.join("deck.zsm"),
                dict(false),
                ShardPolicy::by_lines(17),
                WriterOptions {
                    threads,
                    batch_bytes: 128,
                },
            )
            .unwrap();
            for chunk in deck_bytes().chunks(7) {
                w.write(chunk).unwrap();
            }
            let info = w.finish().unwrap();
            assert_eq!(info.lines, serial.lines);
            assert_eq!(info.shards, serial.shards, "threads={threads}");
            assert_eq!(
                std::fs::read(dir.join("deck.zsm")).unwrap(),
                std::fs::read(serial_dir.join("deck.zsm")).unwrap(),
                "threads={threads}: manifests identical"
            );
            for meta in &info.shards {
                assert_eq!(
                    std::fs::read(dir.join(&meta.file)).unwrap(),
                    std::fs::read(serial_dir.join(&meta.file)).unwrap(),
                    "threads={threads}: shard {} identical",
                    meta.file
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        // Note: `pack_sharded` uses threads=2, i.e. the parallel path; pin
        // the true serial reference too.
        let dir1 = tmpdir("par_t1");
        let mut w = ShardedWriter::create(
            &dir1.join("deck.zsm"),
            dict(false),
            ShardPolicy::by_lines(17),
            WriterOptions {
                threads: 1,
                batch_bytes: 128,
            },
        )
        .unwrap();
        for chunk in deck_bytes().chunks(7) {
            w.write(chunk).unwrap();
        }
        let info1 = w.finish().unwrap();
        assert_eq!(info1.shards, serial.shards);
        for meta in &info1.shards {
            assert_eq!(
                std::fs::read(dir1.join(&meta.file)).unwrap(),
                std::fs::read(serial_dir.join(&meta.file)).unwrap(),
                "serial streaming shard {} identical to parallel",
                meta.file
            );
        }
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&serial_dir).ok();
    }

    #[test]
    fn empty_deck_shards_to_one_empty_shard() {
        let dir = tmpdir("empty");
        let w = ShardedWriter::create(
            &dir.join("deck.zsm"),
            dict(false),
            ShardPolicy::by_lines(10),
            WriterOptions::default(),
        )
        .unwrap();
        let info = w.finish().unwrap();
        assert_eq!(info.lines, 0);
        assert_eq!(info.shards.len(), 1);
        let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        assert!(reader.is_empty());
        assert!(reader.get(0).is_err());
        assert_eq!(reader.lines().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_needs_a_budget() {
        let dir = tmpdir("policy");
        for policy in [
            ShardPolicy::default(),
            ShardPolicy::by_lines(0),
            ShardPolicy::by_bytes(0),
        ] {
            assert!(ShardedWriter::create(
                &dir.join("deck.zsm"),
                dict(false),
                policy,
                WriterOptions::default(),
            )
            .is_err());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_cross_checks_shards_against_the_manifest() {
        let dir = tmpdir("xcheck");
        pack_sharded(&dir, false, ShardPolicy::by_lines(40));
        let manifest_path = dir.join("deck.zsm");

        // A tampered line count is refused.
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        let tampered = text.replace("lines 120", "lines 121").replacen(
            "deck.00000.zsa 40",
            "deck.00000.zsa 41",
            1,
        );
        std::fs::write(&manifest_path, &tampered).unwrap();
        assert!(matches!(
            ShardedReader::open(&manifest_path).unwrap_err(),
            ZsmilesError::ManifestFormat { .. }
        ));
        std::fs::write(&manifest_path, &text).unwrap();

        // A tampered CRC is refused (without reading any payload).
        let swapped = text
            .lines()
            .map(|l| {
                if l.starts_with("shard deck.00001") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    parts[4] = "00000000";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&manifest_path, swapped).unwrap();
        assert!(matches!(
            ShardedReader::open(&manifest_path).unwrap_err(),
            ZsmilesError::ManifestFormat { .. }
        ));
        std::fs::write(&manifest_path, &text).unwrap();

        // A missing shard file is an I/O error.
        let shard0 = dir.join("deck.00000.zsa");
        let bytes = std::fs::read(&shard0).unwrap();
        std::fs::remove_file(&shard0).unwrap();
        assert!(ShardedReader::open(&manifest_path).is_err());
        std::fs::write(&shard0, &bytes).unwrap();
        ShardedReader::open(&manifest_path).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deck_reader_dispatches_both_layouts() {
        let dir = tmpdir("dispatch");
        // Sharded.
        pack_sharded(&dir, false, ShardPolicy::by_lines(33));
        let sharded = DeckReader::open(&dir.join("deck.zsm")).unwrap();
        assert!(matches!(sharded, DeckReader::Sharded(_)));
        assert_eq!(sharded.shard_count(), 4);
        // Single file of the same deck.
        let single_path = dir.join("deck.zsa");
        Archive::pack(dict(false), &deck_bytes(), 1)
            .save(&single_path)
            .unwrap();
        let single = DeckReader::open(&single_path).unwrap();
        assert!(matches!(single, DeckReader::Single(_)));
        assert_eq!(single.shard_count(), 1);

        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.flavor(), single.flavor());
        for i in [0usize, 33, 66, 119] {
            assert_eq!(sharded.get(i).unwrap(), single.get(i).unwrap(), "line {i}");
        }
        assert_eq!(
            sharded.get_range(30..40).unwrap(),
            single.get_range(30..40).unwrap()
        );
        assert_eq!(
            sharded.get_many(&[119, 0, 34]).unwrap(),
            single.get_many(&[119, 0, 34]).unwrap()
        );
        let mut a = Vec::new();
        sharded.unpack_to(&mut a, 2, 4096).unwrap();
        let mut b = Vec::new();
        single.unpack_to(&mut b, 2, 4096).unwrap();
        assert_eq!(a, b);
        sharded.verify().unwrap();
        single.verify().unwrap();

        // Neither layout: a typed error, not a panic.
        let junk = dir.join("junk.bin");
        std::fs::write(&junk, b"neither layout at all").unwrap();
        assert!(DeckReader::open(&junk).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
