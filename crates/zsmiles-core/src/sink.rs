//! Byte sinks for out-of-core archive writing — the write-side mirror of
//! [`crate::source`].
//!
//! The read path pays off because [`crate::source::ArchiveSource`] only
//! transfers the ranges a reader asks for. The write path needs the dual
//! contract: [`ArchiveSink`] is an append-mostly byte consumer that a
//! [`crate::writer::ArchiveWriter`] can stream compressed spans into
//! without ever materializing the container — plus one positioned-write
//! escape hatch, `write_at`, for the single place the `.zsa` format needs
//! it (the fixed-size header at offset 0 carries `payload_len`, which a
//! streaming writer only knows at finalize; it writes a placeholder up
//! front and patches it once).
//!
//! Implementations:
//!
//! * [`FileSink`] — a file on disk; appends are ordinary buffered-free
//!   sequential writes, the header patch is positioned I/O (`pwrite` on
//!   unix, a seek-and-restore fallback elsewhere).
//! * [`InMemorySink`] — an owned `Vec<u8>`, for tests and in-process
//!   container assembly.
//! * [`CountingSink`] — a transparent wrapper that meters appends,
//!   bytes and patches; it is how the test suite *proves* the streaming
//!   writer's memory stays bounded while the container grows unbounded.

use crate::error::ZsmilesError;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// An append-oriented byte container an [`crate::writer::ArchiveWriter`]
/// streams a `.zsa` into. `position()` is the append cursor (= bytes
/// written so far); `write_at` may only touch bytes *before* it, so a
/// sink never needs to model holes.
pub trait ArchiveSink {
    /// Append `buf` at the current position.
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError>;

    /// Overwrite `buf.len()` bytes at `offset`. The whole range must lie
    /// inside the already-written region — this is a patch primitive
    /// (header fixup), not random-access writing.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError>;

    /// Bytes appended so far (the offset the next `append` lands at).
    fn position(&self) -> u64;

    /// Flush buffered bytes to the underlying medium.
    fn flush(&mut self) -> Result<(), ZsmilesError>;
}

/// Shared patch-range check so out-of-range patches fail identically
/// everywhere.
fn check_patch(written: u64, offset: u64, len: usize) -> Result<(), ZsmilesError> {
    match offset.checked_add(len as u64) {
        Some(end) if end <= written => Ok(()),
        _ => Err(ZsmilesError::SourceOutOfBounds {
            offset,
            len,
            available: written,
        }),
    }
}

/// An owned in-memory container image being assembled.
#[derive(Debug, Clone, Default)]
pub struct InMemorySink {
    bytes: Vec<u8>,
}

impl InMemorySink {
    pub fn new() -> Self {
        InMemorySink::default()
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl ArchiveSink for InMemorySink {
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.bytes.extend_from_slice(buf);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError> {
        check_patch(self.bytes.len() as u64, offset, buf.len())?;
        let at = offset as usize;
        self.bytes[at..at + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    fn position(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        Ok(())
    }
}

/// A `.zsa` file being written on disk. Appends advance the file cursor;
/// the header patch uses positioned I/O so it never disturbs it.
#[derive(Debug)]
pub struct FileSink {
    file: File,
    written: u64,
}

impl FileSink {
    /// Create (truncate) `path` for writing.
    pub fn create(path: &Path) -> Result<FileSink, ZsmilesError> {
        Ok(FileSink {
            file: File::create(path)?,
            written: 0,
        })
    }

    pub fn into_file(self) -> File {
        self.file
    }
}

impl ArchiveSink for FileSink {
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.file.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError> {
        check_patch(self.written, offset, buf.len())?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom};
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(buf)?;
            self.file.seek(SeekFrom::Start(self.written))?;
        }
        Ok(())
    }

    fn position(&self) -> u64 {
        self.written
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        self.file.flush()?;
        Ok(())
    }
}

/// A [`FileSink`] that only becomes visible under its real name on
/// success. Bytes stream into `.<name>.tmp` in the destination
/// directory; [`AtomicFileSink::commit`] fsyncs the file, renames it
/// over the destination, and (on unix) fsyncs the parent directory so
/// the rename itself is durable. A crash or error anywhere before
/// `commit` leaves at most a `.tmp` orphan — never a half-written file
/// that parses as the real thing. This is what makes `pack` crash-safe:
/// shards and manifests are published atomically or not at all.
#[derive(Debug)]
pub struct AtomicFileSink {
    inner: FileSink,
    tmp: std::path::PathBuf,
    dest: std::path::PathBuf,
}

impl AtomicFileSink {
    /// Start writing the file that will become `dest`. The temp name
    /// lives beside it (same filesystem, so the rename is atomic) and
    /// starts with a dot so nothing sniffs it as a deck.
    pub fn create(dest: &Path) -> Result<AtomicFileSink, ZsmilesError> {
        let name = dest
            .file_name()
            .ok_or_else(|| ZsmilesError::Io(format!("no file name in '{}'", dest.display())))?;
        let tmp = dest.with_file_name(format!(".{}.tmp", name.to_string_lossy()));
        Ok(AtomicFileSink {
            inner: FileSink::create(&tmp)?,
            tmp,
            dest: dest.to_path_buf(),
        })
    }

    /// The destination this sink will publish to.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Durably publish: flush + fsync the temp file, rename it over the
    /// destination, fsync the parent directory. Only after `commit`
    /// returns can the file be observed under its real name.
    pub fn commit(mut self) -> Result<(), ZsmilesError> {
        self.inner.flush()?;
        self.inner.file.sync_all()?;
        std::fs::rename(&self.tmp, &self.dest)?;
        // Durability of the rename itself: fsync the directory entry.
        // Failure here is ignorable only in the sense that the rename
        // already happened; report it anyway so callers can decide.
        sync_parent_dir(&self.dest)?;
        Ok(())
    }

    /// Publish without durability: flush and rename, but defer the file
    /// and directory fsyncs to the returned [`DeferredSync`]. The file is
    /// immediately visible and complete *in the page cache* — a crash
    /// (`kill -9`) cannot hurt it, only a power loss before the deferred
    /// `sync()` runs can. Batch writers use this to keep fsync latency
    /// off the packing critical path, then sync every shard plus the
    /// parent directory once, right before the manifest — the actual
    /// atomic commit point — is published with a full `commit`.
    pub fn commit_deferred(mut self) -> Result<DeferredSync, ZsmilesError> {
        self.inner.flush()?;
        std::fs::rename(&self.tmp, &self.dest)?;
        Ok(DeferredSync {
            file: self.inner.file,
            dest: self.dest,
        })
    }

    /// Abandon the write and remove the temp file. Called on error
    /// paths; a process killed before this ran leaves only the inert
    /// `.tmp` orphan.
    pub fn discard(self) {
        drop(self.inner);
        std::fs::remove_file(&self.tmp).ok();
    }
}

/// Fsync the directory entry holding `path`, so a rename into it is
/// durable. A no-op on non-unix targets (directory fsync is a unix
/// idiom; elsewhere the rename is as durable as the platform makes it).
pub fn sync_parent_dir(path: &Path) -> Result<(), ZsmilesError> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// A published-but-not-yet-durable file from
/// [`AtomicFileSink::commit_deferred`]: the rename has happened, the
/// fsync has not. Call [`DeferredSync::sync`] before anything that
/// *depends* on this file becomes durable itself.
#[derive(Debug)]
pub struct DeferredSync {
    file: File,
    dest: std::path::PathBuf,
}

impl DeferredSync {
    /// The published path awaiting its fsync.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Make the file contents durable. Does **not** fsync the parent
    /// directory — callers batching many deferred syncs into one
    /// directory should follow up with a single
    /// [`sync_parent_dir`] call.
    pub fn sync(self) -> Result<(), ZsmilesError> {
        self.file.sync_all()?;
        Ok(())
    }
}

impl ArchiveSink for AtomicFileSink {
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.inner.append(buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.inner.write_at(offset, buf)
    }

    fn position(&self) -> u64 {
        self.inner.position()
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        self.inner.flush()
    }
}

/// Wraps any sink and counts traffic: appends, bytes appended, patches.
#[derive(Debug, Default)]
pub struct CountingSink<K> {
    inner: K,
    appends: u64,
    bytes: u64,
    patches: u64,
}

impl<K> CountingSink<K> {
    pub fn new(inner: K) -> Self {
        CountingSink {
            inner,
            appends: 0,
            bytes: 0,
            patches: 0,
        }
    }

    /// Number of `append` calls so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total bytes appended so far.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes
    }

    /// Number of `write_at` patches so far.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    pub fn inner(&self) -> &K {
        &self.inner
    }

    pub fn into_inner(self) -> K {
        self.inner
    }
}

impl<K: ArchiveSink> ArchiveSink for CountingSink<K> {
    fn append(&mut self, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.inner.append(buf)?;
        self.appends += 1;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), ZsmilesError> {
        self.inner.write_at(offset, buf)?;
        self.patches += 1;
        Ok(())
    }

    fn position(&self) -> u64 {
        self.inner.position()
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_sink_appends_and_patches() {
        let mut sink = InMemorySink::new();
        assert_eq!(sink.position(), 0);
        sink.append(b"________").unwrap();
        sink.append(b"payload").unwrap();
        assert_eq!(sink.position(), 15);
        sink.write_at(0, b"HEADER!!").unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.bytes(), b"HEADER!!payload");
        assert_eq!(sink.into_bytes(), b"HEADER!!payload");
    }

    #[test]
    fn patches_outside_the_written_region_are_errors() {
        let mut sink = InMemorySink::new();
        sink.append(b"0123456789").unwrap();
        for (offset, len) in [(8u64, 3usize), (10, 1), (u64::MAX, 1)] {
            let err = sink.write_at(offset, &vec![0u8; len]).unwrap_err();
            assert!(
                matches!(err, ZsmilesError::SourceOutOfBounds { .. }),
                "offset={offset} len={len}: {err}"
            );
        }
        // Patch ending exactly at the cursor is fine.
        sink.write_at(8, b"XY").unwrap();
        assert_eq!(&sink.bytes()[8..], b"XY");
    }

    #[test]
    fn file_sink_round_trips_through_disk() {
        let path =
            std::env::temp_dir().join(format!("zsmiles_test_sink_{}.bin", std::process::id()));
        let mut sink = FileSink::create(&path).unwrap();
        sink.append(b"????").unwrap();
        sink.append(b"tail").unwrap();
        sink.write_at(0, b"head").unwrap();
        assert_eq!(sink.position(), 8);
        assert!(sink.write_at(6, b"xxx").is_err(), "patch past cursor");
        sink.append(b"more").unwrap();
        sink.flush().unwrap();
        drop(sink);
        assert_eq!(std::fs::read(&path).unwrap(), b"headtailmore");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_sink_publishes_only_on_commit() {
        let dir = std::env::temp_dir().join(format!("zsmiles_atomic_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("out.bin");

        // Uncommitted: the destination never appears.
        let mut sink = AtomicFileSink::create(&dest).unwrap();
        sink.append(b"half-done").unwrap();
        assert!(!dest.exists(), "nothing visible before commit");
        assert!(dir.join(".out.bin.tmp").exists(), "temp lives beside dest");
        sink.discard();
        assert!(!dir.join(".out.bin.tmp").exists(), "discard removes temp");
        assert!(!dest.exists());

        // Committed: full contents under the real name, temp gone.
        let mut sink = AtomicFileSink::create(&dest).unwrap();
        sink.append(b"????").unwrap();
        sink.append(b"tail").unwrap();
        sink.write_at(0, b"head").unwrap();
        assert_eq!(sink.position(), 8);
        sink.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"headtail");
        assert!(!dir.join(".out.bin.tmp").exists());

        // Commit over an existing file replaces it atomically.
        let mut sink = AtomicFileSink::create(&dest).unwrap();
        sink.append(b"second").unwrap();
        sink.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"second");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deferred_commit_publishes_then_syncs() {
        let dir =
            std::env::temp_dir().join(format!("zsmiles_deferred_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("out.bin");

        let mut sink = AtomicFileSink::create(&dest).unwrap();
        sink.append(b"????").unwrap();
        sink.append(b"tail").unwrap();
        sink.write_at(0, b"head").unwrap();
        let deferred = sink.commit_deferred().unwrap();
        // Visible and complete under the real name before the fsync.
        assert_eq!(deferred.dest(), dest.as_path());
        assert_eq!(std::fs::read(&dest).unwrap(), b"headtail");
        assert!(!dir.join(".out.bin.tmp").exists());
        deferred.sync().unwrap();
        sync_parent_dir(&dest).unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"headtail");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counting_sink_meters_traffic() {
        let mut sink = CountingSink::new(InMemorySink::new());
        sink.append(b"abc").unwrap();
        sink.append(b"de").unwrap();
        sink.write_at(1, b"X").unwrap();
        assert_eq!(
            (sink.appends(), sink.bytes_appended(), sink.patches()),
            (2, 5, 1)
        );
        assert_eq!(sink.position(), 5);
        assert_eq!(sink.into_inner().into_bytes(), b"aXcde");
    }
}
