//! The serving process: one accept thread, one OS thread per connection,
//! generation snapshots shared through `Arc`.
//!
//! Concurrency model: the current deck lives behind
//! `RwLock<Arc<Generation>>`. Every request clones the `Arc` (a read
//! lock held for nanoseconds) and answers entirely from that snapshot,
//! so a flip mid-request is invisible — the request drains on the
//! generation it started with. The flip itself opens and validates the
//! *new* deck before taking the write lock, so the swap is one pointer
//! exchange and no request ever observes a half-open deck. When the last
//! snapshot of a retired generation drops, its `Drop` impl forgets the
//! deck's blocks from the block cache and adds the count to the server's
//! `retired_blocks` stat.

use super::protocol::{
    read_frame, ErrorCode, FrameRead, HealthStats, Request, Response, ServeStats, MAX_BATCH_LINES,
    MAX_REQUEST_FRAME,
};
use crate::cache::BlockCache;
use crate::error::ZsmilesError;
use crate::shard::{DeckOptions, DeckReader};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often an idle connection thread wakes to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How long shutdown waits for in-flight connections to drain.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Serving knobs. `Default` is a 64-connection cap, the protocol's 1 MiB
/// request-frame cap, and the platform-default read path per file.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most simultaneous connections; excess connects are answered with
    /// a typed `Busy` error and closed.
    pub max_connections: usize,
    /// Largest request frame accepted (bytes).
    pub max_request_frame: usize,
    /// Force every deck file through cached positioned I/O on this
    /// cache (instead of mmap-or-cache per platform). Generation
    /// retirement then deterministically releases blocks here — tests
    /// and cache-budget-conscious deployments use this.
    pub cache: Option<Arc<BlockCache>>,
    /// Open decks in degraded mode: shards that fail their integrity
    /// cross-checks are quarantined instead of failing the open, the
    /// rest of the deck serves, and the `health` probe reports
    /// `degraded`. Applies to the initial open *and* every flip.
    pub degraded: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_connections: 64,
            max_request_frame: MAX_REQUEST_FRAME,
            cache: None,
            degraded: false,
        }
    }
}

/// One dataset generation: an open deck plus its generation number.
/// Dropping the last reference retires the deck's cached blocks and
/// reports how many into the server's `retired_blocks` counter.
struct Generation {
    number: u64,
    deck: DeckReader,
    retired_sink: Arc<AtomicU64>,
}

impl Drop for Generation {
    fn drop(&mut self) {
        let n = self.deck.retire_cached_blocks();
        if n > 0 {
            self.retired_sink.fetch_add(n, Ordering::Relaxed);
        }
    }
}

struct Shared {
    current: RwLock<Arc<Generation>>,
    addr: SocketAddr,
    deck_options: DeckOptions,
    degraded_opens: bool,
    max_connections: usize,
    max_request_frame: usize,
    requests: AtomicU64,
    flips: AtomicU64,
    active: AtomicU32,
    retired_blocks: Arc<AtomicU64>,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the accept loop out of its blocking accept().
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }

    /// Atomically replace the served deck with the archive at `path`.
    /// The new deck opens (and is fully validated) before the write lock
    /// is taken; the swap is one pointer exchange. Returns the
    /// generation now being served.
    fn do_flip(&self, path: &Path) -> Result<u64, ZsmilesError> {
        let deck = open_deck(path, &self.deck_options, self.degraded_opens)?;
        let declared = deck.generation();
        let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let next = if declared == 0 {
            cur.number + 1
        } else if declared > cur.number {
            declared
        } else {
            return Err(ZsmilesError::Protocol {
                reason: format!(
                    "flip rejected: archive declares generation {declared}, \
                     not newer than current generation {}",
                    cur.number
                ),
            });
        };
        let old = std::mem::replace(
            &mut *cur,
            Arc::new(Generation {
                number: next,
                deck,
                retired_sink: Arc::clone(&self.retired_blocks),
            }),
        );
        drop(cur);
        // In-flight requests may still hold snapshots of `old`; the last
        // one out runs Generation::drop and retires the cached blocks.
        drop(old);
        self.flips.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }

    fn stats_snapshot(&self) -> ServeStats {
        let gen = self.snapshot();
        ServeStats {
            generation: gen.number,
            lines: gen.deck.len() as u64,
            shards: gen.deck.shard_count() as u32,
            requests: self.requests.load(Ordering::Relaxed),
            flips: self.flips.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            retired_blocks: self.retired_blocks.load(Ordering::Relaxed),
        }
    }

    fn health_snapshot(&self) -> HealthStats {
        let gen = self.snapshot();
        let quarantined = gen.deck.quarantined().len() as u32;
        HealthStats {
            ok: quarantined == 0,
            generation: gen.number,
            total_shards: gen.deck.shard_count() as u32,
            quarantined_shards: quarantined,
            unavailable_lines: gen.deck.unavailable_lines(),
        }
    }

    /// Answer one decoded request (everything but `Shutdown`, which the
    /// connection loop handles so it can break afterwards).
    fn answer(&self, req: Request) -> Response {
        let gen = self.snapshot();
        match req {
            Request::Get { line } => match gen.deck.get(line as usize) {
                Ok(l) => Response::Lines(vec![l]),
                Err(e) => error_response(e),
            },
            Request::GetRange { start, end } => {
                if end < start {
                    return Response::Error {
                        code: ErrorCode::BadFrame,
                        message: format!("range end {end} before start {start}"),
                    };
                }
                if end - start > MAX_BATCH_LINES as u64 {
                    return Response::Error {
                        code: ErrorCode::BadFrame,
                        message: format!(
                            "range of {} lines exceeds the {MAX_BATCH_LINES}-line cap",
                            end - start
                        ),
                    };
                }
                match gen.deck.get_range(start as usize..end as usize) {
                    Ok(lines) => Response::Lines(lines),
                    Err(e) => error_response(e),
                }
            }
            Request::GetMany { lines } => {
                let idx: Vec<usize> = lines.iter().map(|&l| l as usize).collect();
                match gen.deck.get_many(&idx) {
                    Ok(lines) => Response::Lines(lines),
                    Err(e) => error_response(e),
                }
            }
            Request::Stats => Response::Stats(self.stats_snapshot()),
            Request::Flip { path } => match self.do_flip(Path::new(&path)) {
                Ok(generation) => Response::Flipped { generation },
                Err(e) => Response::Error {
                    code: ErrorCode::FlipRejected,
                    message: e.to_string(),
                },
            },
            Request::Shutdown => Response::Bye,
            Request::Health => Response::Health(self.health_snapshot()),
        }
    }
}

fn open_deck(
    path: &Path,
    options: &DeckOptions,
    degraded: bool,
) -> Result<DeckReader, ZsmilesError> {
    if degraded {
        DeckReader::open_degraded(path, options)
    } else {
        DeckReader::open_with(path, options)
    }
}

fn error_response(e: ZsmilesError) -> Response {
    let code = match &e {
        ZsmilesError::LineOutOfRange { .. } => ErrorCode::OutOfRange,
        ZsmilesError::ShardUnavailable { .. } => ErrorCode::Unavailable,
        ZsmilesError::Protocol { .. } => ErrorCode::BadFrame,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&resp.encode())
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut stream, shared.max_request_frame) {
            Ok(FrameRead::Frame(b)) => b,
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TimedOut) => continue,
            Err(ZsmilesError::Protocol { reason }) => {
                // The frame boundary is lost (oversized/truncated/stalled
                // frame): answer with a typed error, then close.
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: reason,
                    },
                );
                break;
            }
            Err(_) => break,
        };
        let req = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary held — only the body was malformed —
                // so the connection stays usable.
                if write_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(req, Request::Shutdown) {
            let _ = write_response(&mut stream, &Response::Bye);
            shared.begin_shutdown();
            break;
        }
        let resp = shared.answer(req);
        if write_response(&mut stream, &resp).is_err() {
            break;
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let prev = shared.active.fetch_add(1, Ordering::SeqCst);
        if prev as usize >= shared.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            let mut s = stream;
            let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = write_response(
                &mut s,
                &Response::Error {
                    code: ErrorCode::Busy,
                    message: format!(
                        "server at its {}-connection capacity",
                        shared.max_connections
                    ),
                },
            );
            continue;
        }
        let shared2 = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("zsmiles-serve-conn".into())
            .spawn(move || {
                handle_connection(stream, &shared2);
                shared2.active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Shutdown: give in-flight connections a bounded window to drain
    // (their poll loops notice the flag within one POLL_TICK).
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
}

/// Namespace for starting a serving process; see [`Server::start`].
pub struct Server;

impl Server {
    /// Open the deck at `deck_path` (either layout; see
    /// [`DeckReader::open`]), bind `addr` (use port 0 for an ephemeral
    /// port) and start serving. Returns a [`ServeHandle`] immediately;
    /// serving happens on background threads.
    pub fn start<A: ToSocketAddrs>(
        deck_path: &Path,
        addr: A,
        options: ServeOptions,
    ) -> Result<ServeHandle, ZsmilesError> {
        let deck_options = DeckOptions {
            cache: options.cache.clone(),
        };
        let deck = open_deck(deck_path, &deck_options, options.degraded)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let retired_blocks = Arc::new(AtomicU64::new(0));
        let generation = Generation {
            number: deck.generation(),
            deck,
            retired_sink: Arc::clone(&retired_blocks),
        };
        let shared = Arc::new(Shared {
            current: RwLock::new(Arc::new(generation)),
            addr,
            deck_options,
            degraded_opens: options.degraded,
            max_connections: options.max_connections,
            max_request_frame: options.max_request_frame,
            requests: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            active: AtomicU32::new(0),
            retired_blocks,
            shutdown: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("zsmiles-serve-accept".into())
            .spawn(move || accept_loop(listener, shared2))
            .map_err(|e| ZsmilesError::Io(e.to_string()))?;
        Ok(ServeHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServeHandle::wait`] to instead block until a wire `shutdown`
/// request stops it.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.snapshot().number
    }

    /// Current server counters, same data as the wire `stats` request.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats_snapshot()
    }

    /// Deck health, same data as the wire `health` request.
    pub fn health(&self) -> HealthStats {
        self.shared.health_snapshot()
    }

    /// Atomically flip to the archive at `path` from the server side
    /// (the wire `flip` request does the same). Returns the new
    /// generation number.
    pub fn flip(&self, path: &Path) -> Result<u64, ZsmilesError> {
        self.shared.do_flip(path)
    }

    /// Ask the server to stop; in-flight connections drain within the
    /// poll tick. Does not block — follow with [`ServeHandle::wait`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the server stops (a wire `shutdown` request, or
    /// [`ServeHandle::shutdown`] from another thread).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.shared.begin_shutdown();
            let _ = h.join();
        }
    }
}
