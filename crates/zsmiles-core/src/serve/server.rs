//! The serving process: request execution, generation snapshots, and the
//! two executors that drive connections.
//!
//! Concurrency model: the current deck lives behind
//! `RwLock<Arc<Generation>>`. Every request clones the `Arc` (a read
//! lock held for nanoseconds) and answers entirely from that snapshot,
//! so a flip mid-request is invisible — the request drains on the
//! generation it started with. The flip itself opens and validates the
//! *new* deck before taking the write lock, so the swap is one pointer
//! exchange and no request ever observes a half-open deck. When the last
//! snapshot of a retired generation drops, its `Drop` impl forgets the
//! deck's blocks from the block cache and adds the count to the server's
//! `retired_blocks` stat.
//!
//! Two executors share all of that:
//!
//! * [`Executor::Pooled`] (the default on 64-bit Unix) — the
//!   readiness-driven event loop in [`super::event`]: one `poll(2)`
//!   thread owns every socket, decoded requests run on a small fixed
//!   worker pool, and connections are *pipelined* (many requests in
//!   flight per connection, responses strictly in submission order).
//! * [`Executor::Threaded`] — the original thread-per-connection loop,
//!   kept selectable so the two models stay comparable under the same
//!   bench harness.

use super::protocol::{
    read_frame, ErrorCode, FrameRead, HealthStats, HitRow, Request, Response, ServeStats,
    MAX_BATCH_LINES, MAX_REQUEST_FRAME,
};
use crate::cache::BlockCache;
use crate::error::ZsmilesError;
use crate::shard::{DeckOptions, DeckReader};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often an idle threaded connection wakes to check the shutdown
/// flag. The pooled executor has no tick — it sleeps in `poll(2)` until
/// a socket or its wakeup pipe turns readable.
pub(super) const POLL_TICK: Duration = Duration::from_millis(100);

/// How long shutdown waits for in-flight connections to drain.
pub(super) const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// How long an over-cap connection gets to present its one frame before
/// the server gives up and answers `Busy`.
pub(super) const OVERCAP_DEADLINE: Duration = Duration::from_secs(2);

/// Most simultaneous over-cap probe threads the threaded executor will
/// run; beyond this, over-cap connects get the old unread `Busy`.
const OVERCAP_THREADS: u32 = 16;

/// Lines scored per `get_range` batch during a server-side `top_hits`
/// sweep — bounds the decoded-lines working set of a screening request.
const SCREEN_BATCH: usize = 4096;

/// Which connection-driving model a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Readiness-driven event loop + fixed worker pool (pipelined
    /// connections, batched dispatch). Falls back to [`Executor::Threaded`]
    /// on platforms without the `poll(2)` binding.
    #[default]
    Pooled,
    /// One OS thread per connection, one request in flight at a time —
    /// the PR 7 model, kept selectable for comparison.
    Threaded,
}

/// Scores deck lines against a screening pattern, server-side.
///
/// The serving core cannot depend on the screening crate (the dependency
/// points the other way), so `top_hits` execution is pluggable: the CLI
/// installs a `vscreen`-backed screener, tests install toy ones. The
/// contract that makes wire results byte-identical to a local campaign:
/// the same `(pattern, line)` must produce the same `f64` bits here as
/// in the local scorer.
pub trait Screener: Send + Sync {
    /// Append one score per line of `lines` (in order) to `out`. A
    /// malformed `pattern` should come back as
    /// [`ZsmilesError::Protocol`], which the server maps to a typed
    /// `BadFrame` wire error.
    fn score_batch(
        &self,
        pattern: &str,
        lines: &[Vec<u8>],
        out: &mut Vec<f64>,
    ) -> Result<(), ZsmilesError>;
}

/// Serving knobs. `Default` is the pooled executor with `min(cores, 8)`
/// workers, a 64-connection cap, 64 requests in flight per connection,
/// the protocol's 1 MiB request-frame cap, and the platform-default read
/// path per file.
#[derive(Clone)]
pub struct ServeOptions {
    /// Most simultaneous connections; excess connects are answered with
    /// a typed `Busy` error and closed — after one frame's grace so a
    /// `health` probe is still answered (a saturated server must not
    /// look dead to its orchestrator).
    pub max_connections: usize,
    /// Largest request frame accepted (bytes).
    pub max_request_frame: usize,
    /// Force every deck file through cached positioned I/O on this
    /// cache (instead of mmap-or-cache per platform). Generation
    /// retirement then deterministically releases blocks here — tests
    /// and cache-budget-conscious deployments use this.
    pub cache: Option<Arc<BlockCache>>,
    /// Open decks in degraded mode: shards that fail their integrity
    /// cross-checks are quarantined instead of failing the open, the
    /// rest of the deck serves, and the `health` probe reports
    /// `degraded`. Applies to the initial open *and* every flip.
    pub degraded: bool,
    /// Connection-driving model; see [`Executor`].
    pub executor: Executor,
    /// Worker threads for the pooled executor (`0` = `min(cores, 8)`).
    /// Ignored by the threaded executor.
    pub workers: usize,
    /// Most requests the pooled executor keeps in flight per connection
    /// before it stops reading that socket (backpressure, not an
    /// error). Ignored by the threaded executor, which is strictly
    /// one-at-a-time anyway.
    pub pipeline_depth: usize,
    /// Server-side screening hook for `top_hits` requests; without one
    /// they are answered with a typed `Unsupported` error.
    pub screener: Option<Arc<dyn Screener>>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("max_connections", &self.max_connections)
            .field("max_request_frame", &self.max_request_frame)
            .field("cache", &self.cache.is_some())
            .field("degraded", &self.degraded)
            .field("executor", &self.executor)
            .field("workers", &self.workers)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("screener", &self.screener.is_some())
            .finish()
    }
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_connections: 64,
            max_request_frame: MAX_REQUEST_FRAME,
            cache: None,
            degraded: false,
            executor: Executor::default(),
            workers: 0,
            pipeline_depth: 64,
            screener: None,
        }
    }
}

/// The pooled executor's default worker count: enough to keep a handful
/// of cores busy, never a thread herd.
pub(super) fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// One dataset generation: an open deck plus its generation number.
/// Dropping the last reference retires the deck's cached blocks and
/// reports how many into the server's `retired_blocks` counter.
pub(super) struct Generation {
    pub(super) number: u64,
    pub(super) deck: DeckReader,
    retired_sink: Arc<AtomicU64>,
}

impl Drop for Generation {
    fn drop(&mut self) {
        let n = self.deck.retire_cached_blocks();
        if n > 0 {
            self.retired_sink.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Everything a connection needs to answer requests, shared between the
/// accept/event machinery, the workers, and the [`ServeHandle`].
pub(super) struct Shared {
    current: RwLock<Arc<Generation>>,
    deck_options: DeckOptions,
    degraded_opens: bool,
    pub(super) max_connections: usize,
    pub(super) max_request_frame: usize,
    pub(super) pipeline_depth: usize,
    screener: Option<Arc<dyn Screener>>,
    pub(super) requests: AtomicU64,
    flips: AtomicU64,
    pub(super) active: AtomicU32,
    overcap_threads: AtomicU32,
    retired_blocks: Arc<AtomicU64>,
    pub(super) shutdown: AtomicBool,
    /// How the executor is kicked out of its blocking wait when
    /// `begin_shutdown` runs: the event loop registers a wakeup-pipe
    /// write, the threaded accept loop a self-connect.
    waker: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Shared {
    pub(super) fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub(super) fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let waker = self.waker.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(wake) = waker.as_ref() {
                wake();
            }
        }
    }

    pub(super) fn set_waker(&self, wake: Box<dyn Fn() + Send + Sync>) {
        *self.waker.lock().unwrap_or_else(PoisonError::into_inner) = Some(wake);
    }

    /// Atomically replace the served deck with the archive at `path`.
    /// The new deck opens (and is fully validated) before the write lock
    /// is taken; the swap is one pointer exchange. Returns the
    /// generation now being served.
    fn do_flip(&self, path: &Path) -> Result<u64, ZsmilesError> {
        let deck = open_deck(path, &self.deck_options, self.degraded_opens)?;
        let declared = deck.generation();
        let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let next = if declared == 0 {
            cur.number + 1
        } else if declared > cur.number {
            declared
        } else {
            return Err(ZsmilesError::Protocol {
                reason: format!(
                    "flip rejected: archive declares generation {declared}, \
                     not newer than current generation {}",
                    cur.number
                ),
            });
        };
        let old = std::mem::replace(
            &mut *cur,
            Arc::new(Generation {
                number: next,
                deck,
                retired_sink: Arc::clone(&self.retired_blocks),
            }),
        );
        drop(cur);
        // In-flight requests may still hold snapshots of `old`; the last
        // one out runs Generation::drop and retires the cached blocks.
        drop(old);
        self.flips.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }

    fn stats_snapshot(&self) -> ServeStats {
        let gen = self.snapshot();
        ServeStats {
            generation: gen.number,
            lines: gen.deck.len() as u64,
            shards: gen.deck.shard_count() as u32,
            requests: self.requests.load(Ordering::Relaxed),
            flips: self.flips.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            retired_blocks: self.retired_blocks.load(Ordering::Relaxed),
        }
    }

    pub(super) fn health_snapshot(&self) -> HealthStats {
        let gen = self.snapshot();
        let quarantined = gen.deck.quarantined().len() as u32;
        HealthStats {
            ok: quarantined == 0,
            generation: gen.number,
            total_shards: gen.deck.shard_count() as u32,
            quarantined_shards: quarantined,
            unavailable_lines: gen.deck.unavailable_lines(),
        }
    }

    /// Run a screening campaign over one generation snapshot: score the
    /// whole deck in bounded batches, select the top `k` exactly as the
    /// local campaign does (stable sort, ties toward the smaller line),
    /// then fetch only the winners.
    fn answer_top_hits(&self, gen: &Generation, k: usize, pattern: &str) -> Response {
        let Some(screener) = self.screener.as_ref() else {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "server has no screener configured for top_hits".into(),
            };
        };
        let len = gen.deck.len();
        let mut scores: Vec<f64> = Vec::with_capacity(len);
        let mut start = 0;
        while start < len {
            let end = (start + SCREEN_BATCH).min(len);
            let lines = match gen.deck.get_range(start..end) {
                Ok(lines) => lines,
                Err(e) => return error_response(e),
            };
            if let Err(e) = screener.score_batch(pattern, &lines, &mut scores) {
                return error_response(e);
            }
            start = end;
        }
        if scores.len() != len {
            return Response::Error {
                code: ErrorCode::Internal,
                message: format!("screener returned {} scores for {len} lines", scores.len()),
            };
        }
        // Selection must match `ScoreTable::top_k` bit for bit: best
        // first, ties (and NaN pairs) resolved toward the smaller line
        // by the stable sort.
        let mut idx: Vec<usize> = (0..len).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        let fetched = match gen.deck.get_many(&idx) {
            Ok(lines) => lines,
            Err(e) => return error_response(e),
        };
        Response::Hits(
            idx.into_iter()
                .zip(fetched)
                .map(|(i, smiles)| HitRow {
                    index: i as u64,
                    score_bits: scores[i].to_bits(),
                    smiles,
                })
                .collect(),
        )
    }

    /// Answer one decoded request (everything but `Shutdown`, which the
    /// executors handle so they can stop afterwards).
    pub(super) fn answer(&self, req: Request) -> Response {
        let gen = self.snapshot();
        self.answer_on(&gen, req)
    }

    /// [`Shared::answer`] against a caller-held generation snapshot —
    /// what batched dispatch uses so one readiness sweep's requests all
    /// run against the same deck.
    pub(super) fn answer_on(&self, gen: &Generation, req: Request) -> Response {
        match req {
            Request::Get { line } => match gen.deck.get(line as usize) {
                Ok(l) => Response::Lines(vec![l]),
                Err(e) => error_response(e),
            },
            Request::GetRange { start, end } => {
                if end < start {
                    return Response::Error {
                        code: ErrorCode::BadFrame,
                        message: format!("range end {end} before start {start}"),
                    };
                }
                if end - start > MAX_BATCH_LINES as u64 {
                    return Response::Error {
                        code: ErrorCode::BadFrame,
                        message: format!(
                            "range of {} lines exceeds the {MAX_BATCH_LINES}-line cap",
                            end - start
                        ),
                    };
                }
                match gen.deck.get_range(start as usize..end as usize) {
                    Ok(lines) => Response::Lines(lines),
                    Err(e) => error_response(e),
                }
            }
            Request::GetMany { lines } => {
                let idx: Vec<usize> = lines.iter().map(|&l| l as usize).collect();
                match gen.deck.get_many(&idx) {
                    Ok(lines) => Response::Lines(lines),
                    Err(e) => error_response(e),
                }
            }
            Request::Stats => Response::Stats(self.stats_snapshot()),
            Request::Flip { path } => match self.do_flip(Path::new(&path)) {
                Ok(generation) => Response::Flipped { generation },
                Err(e) => Response::Error {
                    code: ErrorCode::FlipRejected,
                    message: e.to_string(),
                },
            },
            Request::Shutdown => Response::Bye,
            Request::Health => Response::Health(self.health_snapshot()),
            Request::TopHits { k, pattern } => self.answer_top_hits(gen, k as usize, &pattern),
        }
    }

    /// Answer a contiguous run of `GET` requests from one pipelined
    /// connection as a single batched `get_many` against one snapshot —
    /// one index walk and one decoder pass instead of N. Falls back to
    /// per-line answers (on the same snapshot) when the batch fails, so
    /// each request keeps its own typed error.
    pub(super) fn answer_get_run(&self, gen: &Generation, lines: &[u64]) -> Vec<Response> {
        let idx: Vec<usize> = lines.iter().map(|&l| l as usize).collect();
        match gen.deck.get_many(&idx) {
            Ok(fetched) => fetched
                .into_iter()
                .map(|l| Response::Lines(vec![l]))
                .collect(),
            Err(_) => lines
                .iter()
                .map(|&line| self.answer_on(gen, Request::Get { line }))
                .collect(),
        }
    }
}

pub(super) fn open_deck(
    path: &Path,
    options: &DeckOptions,
    degraded: bool,
) -> Result<DeckReader, ZsmilesError> {
    if degraded {
        DeckReader::open_degraded(path, options)
    } else {
        DeckReader::open_with(path, options)
    }
}

pub(super) fn error_response(e: ZsmilesError) -> Response {
    let code = match &e {
        ZsmilesError::LineOutOfRange { .. } => ErrorCode::OutOfRange,
        ZsmilesError::ShardUnavailable { .. } => ErrorCode::Unavailable,
        ZsmilesError::Protocol { .. } => ErrorCode::BadFrame,
        ZsmilesError::Unsupported { .. } => ErrorCode::Unsupported,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

pub(super) fn busy_response(max_connections: usize) -> Response {
    Response::Error {
        code: ErrorCode::Busy,
        message: format!("server at its {max_connections}-connection capacity"),
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&resp.encode())
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut stream, shared.max_request_frame) {
            Ok(FrameRead::Frame(b)) => b,
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TimedOut) => continue,
            Err(ZsmilesError::Protocol { reason }) => {
                // The frame boundary is lost (oversized/truncated/stalled
                // frame): answer with a typed error, then close.
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: reason,
                    },
                );
                break;
            }
            Err(_) => break,
        };
        let req = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary held — only the body was malformed —
                // so the connection stays usable.
                if write_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(req, Request::Shutdown) {
            let _ = write_response(&mut stream, &Response::Bye);
            shared.begin_shutdown();
            break;
        }
        let resp = shared.answer(req);
        if write_response(&mut stream, &resp).is_err() {
            break;
        }
    }
}

/// An over-cap connection still gets one frame's worth of attention:
/// a `health` probe is answered (a saturated server must not look dead
/// to its orchestrator), anything else — including silence past
/// [`OVERCAP_DEADLINE`] — gets the typed `Busy` and the close the cap
/// always meant.
fn handle_overcap(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let deadline = Instant::now() + OVERCAP_DEADLINE;
    let resp = loop {
        match read_frame(&mut stream, shared.max_request_frame) {
            Ok(FrameRead::Frame(body)) => match Request::decode(&body) {
                Ok(Request::Health) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    break Response::Health(shared.health_snapshot());
                }
                _ => break busy_response(shared.max_connections),
            },
            Ok(FrameRead::TimedOut) if Instant::now() < deadline => continue,
            Ok(_) | Err(_) => break busy_response(shared.max_connections),
        }
    };
    let _ = write_response(&mut stream, &resp);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let prev = shared.active.fetch_add(1, Ordering::SeqCst);
        if prev as usize >= shared.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            // One bounded probe thread per over-cap connect, so HEALTH
            // still answers at the cap; past the probe budget, fall back
            // to an immediate unread Busy.
            let prev_probes = shared.overcap_threads.fetch_add(1, Ordering::SeqCst);
            if prev_probes < OVERCAP_THREADS {
                let shared2 = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("zsmiles-serve-overcap".into())
                    .spawn(move || {
                        handle_overcap(stream, &shared2);
                        shared2.overcap_threads.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.overcap_threads.fetch_sub(1, Ordering::SeqCst);
                }
            } else {
                shared.overcap_threads.fetch_sub(1, Ordering::SeqCst);
                let mut s = stream;
                let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_response(&mut s, &busy_response(shared.max_connections));
            }
            continue;
        }
        let shared2 = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("zsmiles-serve-conn".into())
            .spawn(move || {
                handle_connection(stream, &shared2);
                shared2.active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Shutdown: give in-flight connections a bounded window to drain
    // (their poll loops notice the flag within one POLL_TICK).
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
}

/// Namespace for starting a serving process; see [`Server::start`].
pub struct Server;

impl Server {
    /// Open the deck at `deck_path` (either layout; see
    /// [`DeckReader::open`]), bind `addr` (use port 0 for an ephemeral
    /// port) and start serving. Returns a [`ServeHandle`] immediately;
    /// serving happens on background threads.
    pub fn start<A: ToSocketAddrs>(
        deck_path: &Path,
        addr: A,
        options: ServeOptions,
    ) -> Result<ServeHandle, ZsmilesError> {
        let deck_options = DeckOptions {
            cache: options.cache.clone(),
        };
        let deck = open_deck(deck_path, &deck_options, options.degraded)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let retired_blocks = Arc::new(AtomicU64::new(0));
        let generation = Generation {
            number: deck.generation(),
            deck,
            retired_sink: Arc::clone(&retired_blocks),
        };
        let shared = Arc::new(Shared {
            current: RwLock::new(Arc::new(generation)),
            deck_options,
            degraded_opens: options.degraded,
            max_connections: options.max_connections,
            max_request_frame: options.max_request_frame,
            pipeline_depth: options.pipeline_depth.max(1),
            screener: options.screener.clone(),
            requests: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            active: AtomicU32::new(0),
            overcap_threads: AtomicU32::new(0),
            retired_blocks,
            shutdown: AtomicBool::new(false),
            waker: Mutex::new(None),
        });
        let driver = match options.executor {
            Executor::Pooled => {
                super::event::start(listener, Arc::clone(&shared), options.workers)?
            }
            Executor::Threaded => start_threaded(listener, Arc::clone(&shared))?,
        };
        Ok(ServeHandle {
            addr,
            shared,
            driver: Some(driver),
        })
    }
}

/// Spawn the thread-per-connection accept loop and register its
/// self-connect waker (the blocking `accept()` has nothing else to kick
/// it out).
pub(super) fn start_threaded(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<JoinHandle<()>, ZsmilesError> {
    let addr = listener.local_addr()?;
    shared.set_waker(Box::new(move || {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
    }));
    let shared2 = Arc::clone(&shared);
    thread::Builder::new()
        .name("zsmiles-serve-accept".into())
        .spawn(move || accept_loop(listener, shared2))
        .map_err(|e| ZsmilesError::Io(e.to_string()))
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServeHandle::wait`] to instead block until a wire `shutdown`
/// request stops it.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    driver: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.snapshot().number
    }

    /// Current server counters, same data as the wire `stats` request.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats_snapshot()
    }

    /// Deck health, same data as the wire `health` request.
    pub fn health(&self) -> HealthStats {
        self.shared.health_snapshot()
    }

    /// Atomically flip to the archive at `path` from the server side
    /// (the wire `flip` request does the same). Returns the new
    /// generation number.
    pub fn flip(&self, path: &Path) -> Result<u64, ZsmilesError> {
        self.shared.do_flip(path)
    }

    /// Ask the server to stop; in-flight connections drain promptly
    /// (the pooled executor is woken through its pipe, the threaded one
    /// within a poll tick). Does not block — follow with
    /// [`ServeHandle::wait`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the server stops (a wire `shutdown` request, or
    /// [`ServeHandle::shutdown`] from another thread).
    pub fn wait(mut self) {
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if let Some(h) = self.driver.take() {
            self.shared.begin_shutdown();
            let _ = h.join();
        }
    }
}
