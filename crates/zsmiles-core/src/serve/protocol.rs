//! The `zsmiles-serve` wire format.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! ┌──────────────┬────────┬──────────────────────────┐
//! │ u32 LE len   │ opcode │ body (len - 1 bytes)     │
//! └──────────────┴────────┴──────────────────────────┘
//! ```
//!
//! The length prefix counts the opcode plus the body, not itself. All
//! integers are little-endian. Decoding is strict: a frame must consume
//! exactly its declared bytes, unknown opcodes and short bodies are
//! typed [`ZsmilesError::Protocol`] errors, and the reader enforces a
//! hard frame-size cap *before* allocating — a hostile 4 GiB length
//! prefix costs nothing.

use crate::error::ZsmilesError;
use std::io::{ErrorKind, Read};

/// Largest request frame a server will read: 1 MiB, enough for a
/// `get_many` of ~131 000 lines. Anything larger is refused before the
/// body is allocated.
pub const MAX_REQUEST_FRAME: usize = 1 << 20;

/// Largest response frame a client will read: 64 MiB of decoded lines.
pub const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Most lines a single `get_range` / `get_many` may ask for. Keeps the
/// worst-case response under [`MAX_RESPONSE_FRAME`] for realistic SMILES
/// and bounds per-request server memory.
pub const MAX_BATCH_LINES: usize = 1 << 16;

/// How many socket-timeout ticks `read_full` tolerates *mid-frame*
/// before declaring the peer stalled. With the server's 100 ms read
/// timeout this is a ~10 s patience window — a client that sends half a
/// frame and goes silent cannot pin a thread forever.
const MID_FRAME_PATIENCE: u32 = 100;

// Request opcodes.
const OP_GET: u8 = 0x01;
const OP_GET_RANGE: u8 = 0x02;
const OP_GET_MANY: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_FLIP: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_HEALTH: u8 = 0x07;
const OP_TOP_HITS: u8 = 0x08;

// Response opcodes (high bit set).
const OP_LINES: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_FLIPPED: u8 = 0x83;
const OP_BYE: u8 = 0x84;
const OP_HEALTH_REPLY: u8 = 0x85;
const OP_HITS: u8 = 0x86;
const OP_ERROR: u8 = 0xFF;

fn protocol(reason: impl Into<String>) -> ZsmilesError {
    ZsmilesError::Protocol {
        reason: reason.into(),
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Decompress one global line.
    Get { line: u64 },
    /// Decompress the contiguous run `start..end`.
    GetRange { start: u64, end: u64 },
    /// Decompress an arbitrary set of lines, answered in request order.
    GetMany { lines: Vec<u64> },
    /// Server counters and the current generation.
    Stats,
    /// Atomically flip the served deck to the archive at `path`
    /// (server-local path, UTF-8).
    Flip { path: String },
    /// Stop the server once in-flight connections drain.
    Shutdown,
    /// Readiness/health probe: is the deck fully servable or degraded?
    Health,
    /// Run a screening campaign server-side: score every line of the
    /// served deck against `pattern` and return the `k` best hits —
    /// one round trip instead of a score pass plus `k` gets.
    TopHits { k: u32, pattern: String },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Decoded SMILES lines, in request order.
    Lines(Vec<Vec<u8>>),
    /// Server counters.
    Stats(ServeStats),
    /// Flip succeeded; the generation now being served.
    Flipped { generation: u64 },
    /// Shutdown acknowledged.
    Bye,
    /// The health probe's answer.
    Health(HealthStats),
    /// Screening winners, best first (ties toward the smaller line).
    Hits(Vec<HitRow>),
    /// The request failed; the connection stays usable unless the frame
    /// itself was unreadable.
    Error { code: ErrorCode, message: String },
}

/// One `top_hits` winner as carried on the wire. The score travels as
/// raw `f64` bits so a wire row compares byte-exactly against a locally
/// computed one (and the enum stays `Eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HitRow {
    /// Global deck line number of the hit.
    pub index: u64,
    /// The hit's score, as `f64::to_bits`.
    pub score_bits: u64,
    /// The decompressed SMILES line.
    pub smiles: Vec<u8>,
}

impl HitRow {
    /// The score as a float (`f64::from_bits` of the wire word).
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }
}

/// Why a request failed, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame was malformed: bad opcode, short body, trailing bytes,
    /// oversized length prefix.
    BadFrame = 1,
    /// A line index past the end of the deck.
    OutOfRange = 2,
    /// A flip was refused (stale generation, unreadable archive).
    FlipRejected = 3,
    /// The server hit an internal error serving the request.
    Internal = 4,
    /// The server is at its connection cap.
    Busy = 5,
    /// The requested line lives on a quarantined shard of a degraded
    /// deck; other lines keep serving.
    Unavailable = 6,
    /// The request is valid but this server is not configured to run it
    /// (e.g. `top_hits` on a server started without a screener).
    Unsupported = 7,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<ErrorCode, ZsmilesError> {
        Ok(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::OutOfRange,
            3 => ErrorCode::FlipRejected,
            4 => ErrorCode::Internal,
            5 => ErrorCode::Busy,
            6 => ErrorCode::Unavailable,
            7 => ErrorCode::Unsupported,
            _ => return Err(protocol(format!("unknown error code {b}"))),
        })
    }
}

/// The `health` reply: is every line of the served deck answerable?
///
/// `status` is deliberately a coarse ok/degraded bit — orchestration
/// readiness probes want a yes/no, the counts explain the no.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// `true` when every shard of the current generation is servable.
    pub ok: bool,
    /// Generation currently being served.
    pub generation: u64,
    /// Shards in the current deck (1 for a single-file archive).
    pub total_shards: u32,
    /// Shards quarantined by the degraded open (0 when `ok`).
    pub quarantined_shards: u32,
    /// Lines answering [`ErrorCode::Unavailable`] instead of bytes.
    pub unavailable_lines: u64,
}

/// The `stats` reply: a fixed-layout snapshot of the serving process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Generation currently being served.
    pub generation: u64,
    /// Lines in the current deck.
    pub lines: u64,
    /// `.zsa` files behind the current deck.
    pub shards: u32,
    /// Requests answered since start (all opcodes).
    pub requests: u64,
    /// Successful generation flips since start.
    pub flips: u64,
    /// Connections currently open.
    pub active_connections: u32,
    /// Blocks dropped from the cache by retired generations.
    pub retired_blocks: u64,
}

// --- primitive readers over a strict cursor -------------------------------

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Cursor<'a> {
        Cursor { body, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ZsmilesError> {
        if self.body.len() - self.at < n {
            return Err(protocol(format!(
                "frame body ends inside {what}: need {n} bytes, {} left",
                self.body.len() - self.at
            )));
        }
        let s = &self.body[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ZsmilesError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ZsmilesError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ZsmilesError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn finish(self, what: &str) -> Result<(), ZsmilesError> {
        if self.at != self.body.len() {
            return Err(protocol(format!(
                "{what} frame has {} trailing bytes",
                self.body.len() - self.at
            )));
        }
        Ok(())
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Stamp the 4-byte length prefix over a frame built with a placeholder.
fn seal(mut frame: Vec<u8>) -> Vec<u8> {
    let body = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&body.to_le_bytes());
    frame
}

fn open_frame(opcode: u8) -> Vec<u8> {
    let mut f = vec![0u8; 4];
    f.push(opcode);
    f
}

impl Request {
    /// Serialize to a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Get { line } => {
                let mut f = open_frame(OP_GET);
                put_u64(&mut f, *line);
                seal(f)
            }
            Request::GetRange { start, end } => {
                let mut f = open_frame(OP_GET_RANGE);
                put_u64(&mut f, *start);
                put_u64(&mut f, *end);
                seal(f)
            }
            Request::GetMany { lines } => {
                let mut f = open_frame(OP_GET_MANY);
                put_u32(&mut f, lines.len() as u32);
                for &l in lines {
                    put_u64(&mut f, l);
                }
                seal(f)
            }
            Request::Stats => seal(open_frame(OP_STATS)),
            Request::Flip { path } => {
                let mut f = open_frame(OP_FLIP);
                put_u32(&mut f, path.len() as u32);
                f.extend_from_slice(path.as_bytes());
                seal(f)
            }
            Request::Shutdown => seal(open_frame(OP_SHUTDOWN)),
            Request::Health => seal(open_frame(OP_HEALTH)),
            Request::TopHits { k, pattern } => {
                let mut f = open_frame(OP_TOP_HITS);
                put_u32(&mut f, *k);
                put_u32(&mut f, pattern.len() as u32);
                f.extend_from_slice(pattern.as_bytes());
                seal(f)
            }
        }
    }

    /// Parse a frame body (opcode + payload, no length prefix). Strict:
    /// short bodies, trailing bytes and unknown opcodes are errors.
    pub fn decode(body: &[u8]) -> Result<Request, ZsmilesError> {
        let mut c = Cursor::new(body);
        let op = c.u8("opcode")?;
        let req = match op {
            OP_GET => Request::Get {
                line: c.u64("get line number")?,
            },
            OP_GET_RANGE => Request::GetRange {
                start: c.u64("range start")?,
                end: c.u64("range end")?,
            },
            OP_GET_MANY => {
                let n = c.u32("get_many count")? as usize;
                if n > MAX_BATCH_LINES {
                    return Err(protocol(format!(
                        "get_many asks for {n} lines; the cap is {MAX_BATCH_LINES}"
                    )));
                }
                let mut lines = Vec::with_capacity(n);
                for _ in 0..n {
                    lines.push(c.u64("get_many line number")?);
                }
                Request::GetMany { lines }
            }
            OP_STATS => Request::Stats,
            OP_FLIP => {
                let n = c.u32("flip path length")? as usize;
                let raw = c.take(n, "flip path")?;
                let path = std::str::from_utf8(raw)
                    .map_err(|_| protocol("flip path is not UTF-8"))?
                    .to_string();
                Request::Flip { path }
            }
            OP_SHUTDOWN => Request::Shutdown,
            OP_HEALTH => Request::Health,
            OP_TOP_HITS => {
                let k = c.u32("top_hits k")?;
                if k as usize > MAX_BATCH_LINES {
                    return Err(protocol(format!(
                        "top_hits asks for {k} hits; the cap is {MAX_BATCH_LINES}"
                    )));
                }
                let n = c.u32("top_hits pattern length")? as usize;
                let raw = c.take(n, "top_hits pattern")?;
                let pattern = std::str::from_utf8(raw)
                    .map_err(|_| protocol("top_hits pattern is not UTF-8"))?
                    .to_string();
                Request::TopHits { k, pattern }
            }
            other => return Err(protocol(format!("unknown request opcode 0x{other:02x}"))),
        };
        c.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Lines(lines) => {
                let mut f = open_frame(OP_LINES);
                put_u32(&mut f, lines.len() as u32);
                for l in lines {
                    put_u32(&mut f, l.len() as u32);
                    f.extend_from_slice(l);
                }
                seal(f)
            }
            Response::Stats(s) => {
                let mut f = open_frame(OP_STATS_REPLY);
                put_u64(&mut f, s.generation);
                put_u64(&mut f, s.lines);
                put_u32(&mut f, s.shards);
                put_u64(&mut f, s.requests);
                put_u64(&mut f, s.flips);
                put_u32(&mut f, s.active_connections);
                put_u64(&mut f, s.retired_blocks);
                seal(f)
            }
            Response::Flipped { generation } => {
                let mut f = open_frame(OP_FLIPPED);
                put_u64(&mut f, *generation);
                seal(f)
            }
            Response::Bye => seal(open_frame(OP_BYE)),
            Response::Health(h) => {
                let mut f = open_frame(OP_HEALTH_REPLY);
                f.push(h.ok as u8);
                put_u64(&mut f, h.generation);
                put_u32(&mut f, h.total_shards);
                put_u32(&mut f, h.quarantined_shards);
                put_u64(&mut f, h.unavailable_lines);
                seal(f)
            }
            Response::Hits(rows) => {
                let mut f = open_frame(OP_HITS);
                put_u32(&mut f, rows.len() as u32);
                for r in rows {
                    put_u64(&mut f, r.index);
                    put_u64(&mut f, r.score_bits);
                    put_u32(&mut f, r.smiles.len() as u32);
                    f.extend_from_slice(&r.smiles);
                }
                seal(f)
            }
            Response::Error { code, message } => {
                let mut f = open_frame(OP_ERROR);
                f.push(*code as u8);
                put_u32(&mut f, message.len() as u32);
                f.extend_from_slice(message.as_bytes());
                seal(f)
            }
        }
    }

    /// Parse a frame body (opcode + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Response, ZsmilesError> {
        let mut c = Cursor::new(body);
        let op = c.u8("opcode")?;
        let resp = match op {
            OP_LINES => {
                let n = c.u32("line count")? as usize;
                if n > MAX_BATCH_LINES {
                    return Err(protocol(format!(
                        "response carries {n} lines; the cap is {MAX_BATCH_LINES}"
                    )));
                }
                let mut lines = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = c.u32("line length")? as usize;
                    lines.push(c.take(len, "line bytes")?.to_vec());
                }
                Response::Lines(lines)
            }
            OP_STATS_REPLY => Response::Stats(ServeStats {
                generation: c.u64("generation")?,
                lines: c.u64("lines")?,
                shards: c.u32("shards")?,
                requests: c.u64("requests")?,
                flips: c.u64("flips")?,
                active_connections: c.u32("active connections")?,
                retired_blocks: c.u64("retired blocks")?,
            }),
            OP_FLIPPED => Response::Flipped {
                generation: c.u64("generation")?,
            },
            OP_BYE => Response::Bye,
            OP_HEALTH_REPLY => {
                let ok = match c.u8("health status")? {
                    0 => false,
                    1 => true,
                    other => return Err(protocol(format!("unknown health status {other}"))),
                };
                Response::Health(HealthStats {
                    ok,
                    generation: c.u64("generation")?,
                    total_shards: c.u32("total shards")?,
                    quarantined_shards: c.u32("quarantined shards")?,
                    unavailable_lines: c.u64("unavailable lines")?,
                })
            }
            OP_HITS => {
                let n = c.u32("hit count")? as usize;
                if n > MAX_BATCH_LINES {
                    return Err(protocol(format!(
                        "response carries {n} hits; the cap is {MAX_BATCH_LINES}"
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let index = c.u64("hit index")?;
                    let score_bits = c.u64("hit score bits")?;
                    let len = c.u32("hit line length")? as usize;
                    rows.push(HitRow {
                        index,
                        score_bits,
                        smiles: c.take(len, "hit line bytes")?.to_vec(),
                    });
                }
                Response::Hits(rows)
            }
            OP_ERROR => {
                let code = ErrorCode::from_u8(c.u8("error code")?)?;
                let n = c.u32("error message length")? as usize;
                let raw = c.take(n, "error message")?;
                let message = String::from_utf8_lossy(raw).into_owned();
                Response::Error { code, message }
            }
            other => return Err(protocol(format!("unknown response opcode 0x{other:02x}"))),
        };
        c.finish("response")?;
        Ok(resp)
    }
}

/// What [`read_frame`] saw on the socket.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame body (opcode + payload; length prefix consumed).
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The socket's read timeout expired with no frame started — the
    /// caller can check its shutdown flag and poll again.
    TimedOut,
}

/// Read until `buf` is full, riding out `Interrupted` and up to
/// [`MID_FRAME_PATIENCE`] read-timeout ticks; EOF mid-buffer is a
/// truncated-frame error.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), ZsmilesError> {
    let mut at = 0;
    let mut patience = MID_FRAME_PATIENCE;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(protocol(format!(
                    "truncated frame: peer closed inside {what} ({at} of {} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if patience == 0 {
                    return Err(protocol(format!("peer stalled mid-frame inside {what}")));
                }
                patience -= 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one frame: the `u32` length prefix, then exactly that many body
/// bytes, refusing lengths over `max` *before* allocating. Distinguishes
/// a clean close between frames ([`FrameRead::Eof`]) and a read-timeout
/// tick before any byte arrived ([`FrameRead::TimedOut`]) from real
/// protocol violations, which come back as
/// [`ZsmilesError::Protocol`].
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<FrameRead, ZsmilesError> {
    let mut len4 = [0u8; 4];
    loop {
        match r.read(&mut len4[..1]) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(FrameRead::TimedOut)
            }
            Err(e) => return Err(e.into()),
        }
    }
    read_full(r, &mut len4[1..], "length prefix")?;
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 {
        return Err(protocol("zero-length frame (no opcode)"));
    }
    if len > max {
        return Err(protocol(format!(
            "oversized frame: {len} bytes declared, cap is {max}"
        )));
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, "frame body")?;
    Ok(FrameRead::Frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix matches frame");
        &frame[4..]
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Get { line: 7 },
            Request::GetRange { start: 3, end: 99 },
            Request::GetMany {
                lines: vec![0, 5, 5, u64::MAX],
            },
            Request::Stats,
            Request::Flip {
                path: "decks/next.zsm".into(),
            },
            Request::Shutdown,
            Request::Health,
            Request::TopHits {
                k: 25,
                pattern: "7".into(),
            },
        ];
        for req in reqs {
            let frame = req.encode();
            assert_eq!(Request::decode(body(&frame)).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Lines(vec![b"CCO".to_vec(), Vec::new(), b"c1ccccc1".to_vec()]),
            Response::Stats(ServeStats {
                generation: 4,
                lines: 100_000,
                shards: 7,
                requests: 123,
                flips: 2,
                active_connections: 9,
                retired_blocks: 512,
            }),
            Response::Flipped { generation: 5 },
            Response::Bye,
            Response::Health(HealthStats {
                ok: false,
                generation: 3,
                total_shards: 8,
                quarantined_shards: 1,
                unavailable_lines: 12_500,
            }),
            Response::Hits(vec![
                HitRow {
                    index: 41,
                    score_bits: 12.5f64.to_bits(),
                    smiles: b"c1ccccc1".to_vec(),
                },
                HitRow {
                    index: 7,
                    score_bits: f64::NEG_INFINITY.to_bits(),
                    smiles: Vec::new(),
                },
            ]),
            Response::Error {
                code: ErrorCode::Unavailable,
                message: "line 12 is on quarantined shard 'deck.00001.zsa'".into(),
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            assert_eq!(Response::decode(body(&frame)).unwrap(), resp);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x00]).is_err());
        // Empty body (no opcode).
        assert!(Request::decode(&[]).is_err());
        // Short body: get wants 8 bytes of line number.
        assert!(Request::decode(&[OP_GET, 1, 2]).is_err());
        // Trailing bytes after a valid opcode.
        let mut with_trailing = body(&Request::Stats.encode()).to_vec();
        with_trailing.push(0xAB);
        assert!(Request::decode(&with_trailing).is_err());
        // get_many whose count field overruns the body.
        let mut f = vec![OP_GET_MANY];
        f.extend_from_slice(&100u32.to_le_bytes());
        f.extend_from_slice(&0u64.to_le_bytes()); // only 1 of 100 lines
        assert!(Request::decode(&f).is_err());
        // get_many over the batch cap.
        let mut f = vec![OP_GET_MANY];
        f.extend_from_slice(&(MAX_BATCH_LINES as u32 + 1).to_le_bytes());
        assert!(Request::decode(&f).is_err());
        // Flip path that is not UTF-8.
        let mut f = vec![OP_FLIP];
        f.extend_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Request::decode(&f).is_err());
        // Health reply whose status byte is neither 0 nor 1.
        let mut f = vec![OP_HEALTH_REPLY, 7];
        f.extend_from_slice(&[0u8; 24]);
        assert!(Response::decode(&f).is_err());
        // top_hits over the batch cap.
        let mut f = vec![OP_TOP_HITS];
        f.extend_from_slice(&(MAX_BATCH_LINES as u32 + 1).to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        assert!(Request::decode(&f).is_err());
        // top_hits pattern that is not UTF-8.
        let mut f = vec![OP_TOP_HITS];
        f.extend_from_slice(&5u32.to_le_bytes());
        f.extend_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Request::decode(&f).is_err());
        // Hits row whose line length overruns the body.
        let mut f = vec![OP_HITS];
        f.extend_from_slice(&1u32.to_le_bytes());
        f.extend_from_slice(&0u64.to_le_bytes());
        f.extend_from_slice(&0u64.to_le_bytes());
        f.extend_from_slice(&100u32.to_le_bytes()); // promises 100 bytes, has 0
        assert!(Response::decode(&f).is_err());
    }

    #[test]
    fn read_frame_enforces_cap_and_eof() {
        use std::io::Cursor as IoCursor;
        // Clean EOF between frames.
        let mut empty = IoCursor::new(Vec::new());
        assert!(matches!(
            read_frame(&mut empty, MAX_REQUEST_FRAME).unwrap(),
            FrameRead::Eof
        ));
        // Oversized length prefix: refused without allocating.
        let mut big = IoCursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut big, MAX_REQUEST_FRAME),
            Err(ZsmilesError::Protocol { .. })
        ));
        // Zero-length frame.
        let mut zero = IoCursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut zero, MAX_REQUEST_FRAME),
            Err(ZsmilesError::Protocol { .. })
        ));
        // Truncated body: header promises 10 bytes, stream ends after 3.
        let mut bytes = 10u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut trunc = IoCursor::new(bytes);
        assert!(matches!(
            read_frame(&mut trunc, MAX_REQUEST_FRAME),
            Err(ZsmilesError::Protocol { .. })
        ));
        // A well-formed frame comes back intact.
        let frame = Request::Get { line: 42 }.encode();
        let mut ok = IoCursor::new(frame.clone());
        match read_frame(&mut ok, MAX_REQUEST_FRAME).unwrap() {
            FrameRead::Frame(b) => assert_eq!(b, frame[4..]),
            other => panic!("expected a frame, got {other:?}"),
        }
    }
}
