//! Blocking client for the `zsmiles-serve` wire protocol — what the CLI
//! `query` subcommand and the bench harness drive.

use super::protocol::{read_frame, FrameRead, Request, Response, ServeStats, MAX_RESPONSE_FRAME};
use crate::error::ZsmilesError;
use std::net::{TcpStream, ToSocketAddrs};

fn protocol(reason: impl Into<String>) -> ZsmilesError {
    ZsmilesError::Protocol {
        reason: reason.into(),
    }
}

/// One connection to a running server. Requests are strictly
/// sequential per connection (one frame out, one frame back); open more
/// clients for concurrency — the server runs a thread per connection.
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connect to a server at `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<QueryClient, ZsmilesError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QueryClient { stream })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ZsmilesError> {
        use std::io::Write;
        self.stream.write_all(&req.encode())?;
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
            FrameRead::Frame(body) => Response::decode(&body),
            FrameRead::Eof => Err(protocol("server closed the connection mid-request")),
            FrameRead::TimedOut => Err(protocol("server went silent mid-request")),
        }
    }

    /// Surface a server-side `Error` response as the typed error it is.
    fn reject(resp: Response, expected: &str) -> ZsmilesError {
        match resp {
            Response::Error { code, message } => {
                protocol(format!("server error ({code:?}): {message}"))
            }
            other => protocol(format!("expected {expected}, got {other:?}")),
        }
    }

    fn expect_lines(resp: Response) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        match resp {
            Response::Lines(lines) => Ok(lines),
            other => Err(QueryClient::reject(other, "a lines response")),
        }
    }

    /// Decompress one global line.
    pub fn get(&mut self, line: u64) -> Result<Vec<u8>, ZsmilesError> {
        let mut lines = QueryClient::expect_lines(self.roundtrip(&Request::Get { line })?)?;
        match lines.len() {
            1 => Ok(lines.pop().unwrap()),
            n => Err(protocol(format!("get returned {n} lines, expected 1"))),
        }
    }

    /// Decompress the contiguous run `start..end`.
    pub fn get_range(&mut self, start: u64, end: u64) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        QueryClient::expect_lines(self.roundtrip(&Request::GetRange { start, end })?)
    }

    /// Decompress an arbitrary set of lines, answered in request order.
    pub fn get_many(&mut self, lines: &[u64]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        QueryClient::expect_lines(self.roundtrip(&Request::GetMany {
            lines: lines.to_vec(),
        })?)
    }

    /// Server counters and the generation currently being served.
    pub fn stats(&mut self) -> Result<ServeStats, ZsmilesError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(QueryClient::reject(other, "a stats response")),
        }
    }

    /// Ask the server to atomically flip to the archive at the
    /// server-local `path`. Returns the generation now being served.
    pub fn flip(&mut self, path: &str) -> Result<u64, ZsmilesError> {
        match self.roundtrip(&Request::Flip { path: path.into() })? {
            Response::Flipped { generation } => Ok(generation),
            other => Err(QueryClient::reject(other, "a flipped response")),
        }
    }

    /// Ask the server to stop once in-flight connections drain.
    pub fn shutdown(&mut self) -> Result<(), ZsmilesError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(QueryClient::reject(other, "a bye response")),
        }
    }
}
