//! Blocking client for the `zsmiles-serve` wire protocol — what the CLI
//! `query` subcommand and the bench harness drive.
//!
//! [`QueryClient::connect`] is the bare TCP connect the tests and quick
//! scripts want; [`QueryClient::connect_with`] layers the production
//! concerns on top: a connect timeout, a read deadline so a stalled
//! server cannot hang the caller forever, and a bounded retry loop with
//! exponential backoff (plus deterministic per-attempt jitter, so a herd
//! of clients retrying the same dead server does not reconnect in
//! lockstep).

use super::protocol::{
    read_frame, FrameRead, HealthStats, HitRow, Request, Response, ServeStats, MAX_RESPONSE_FRAME,
};
use crate::error::ZsmilesError;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

fn protocol(reason: impl Into<String>) -> ZsmilesError {
    ZsmilesError::Protocol {
        reason: reason.into(),
    }
}

/// Connection knobs for [`QueryClient::connect_with`].
///
/// `Default` mirrors [`QueryClient::connect`]: no connect timeout (the
/// OS default), no read deadline, no retries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientOptions {
    /// Give up on an unanswered TCP connect after this long (per
    /// attempt). `None` leaves the OS default in place.
    pub connect_timeout: Option<Duration>,
    /// Overall deadline for a response to start and keep flowing: the
    /// socket read timeout. `None` blocks forever (plus the protocol's
    /// own mid-frame patience window).
    pub read_timeout: Option<Duration>,
    /// Re-attempt a failed *connect* this many times after the first
    /// try, with exponential backoff starting at [`ClientOptions::backoff`].
    /// Requests are never retried — a request may have executed even if
    /// its response was lost, and `flip`/`shutdown` are not idempotent.
    pub retries: u32,
    /// First retry delay; doubles per attempt, ±25% deterministic
    /// jitter. Zero disables the sleep (tests).
    pub backoff: Duration,
}

impl ClientOptions {
    /// The backoff before retry attempt `attempt` (0-based): doubled per
    /// attempt with ±25% jitter mixed from the address and attempt, so
    /// a fleet of clients hammering one dead server spreads out, yet a
    /// failing test reproduces its exact schedule.
    fn backoff_for(&self, attempt: u32, addr: &SocketAddr) -> Duration {
        let base = self.backoff.saturating_mul(1u32 << attempt.min(16));
        if base.is_zero() {
            return base;
        }
        // SplitMix64 over (port, attempt) — stateless, reproducible.
        let mut z = ((addr.port() as u64) << 32 | attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = (z ^ (z >> 31)) % 51; // 0..=50 → 75%..125%
        base.mul_f64((75 + jitter) as f64 / 100.0)
    }
}

/// One connection to a running server. The plain methods are strictly
/// sequential (one frame out, one frame back); [`QueryClient::pipeline`]
/// keeps up to `depth` requests in flight on the same connection, with
/// responses guaranteed to come back in submission order.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connect to a server at `addr` (e.g. `"127.0.0.1:7878"`) with
    /// default options: no timeouts, no retries.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<QueryClient, ZsmilesError> {
        QueryClient::connect_with(addr, &ClientOptions::default())
    }

    /// Connect with explicit timeouts and a bounded, backed-off connect
    /// retry loop. Only the *connect* is retried; requests on an
    /// established connection fail fast (see [`ClientOptions::retries`]).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        options: &ClientOptions,
    ) -> Result<QueryClient, ZsmilesError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(protocol("address resolved to nothing"));
        }
        let mut last_err: Option<ZsmilesError> = None;
        for attempt in 0..=options.retries {
            if attempt > 0 {
                let pause = options.backoff_for(attempt - 1, &addrs[0]);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            for a in &addrs {
                let connected = match options.connect_timeout {
                    Some(t) => TcpStream::connect_timeout(a, t),
                    None => TcpStream::connect(a),
                };
                match connected {
                    Ok(stream) => {
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(options.read_timeout)?;
                        return Ok(QueryClient { stream });
                    }
                    Err(e) => last_err = Some(e.into()),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| protocol("connect failed")))
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ZsmilesError> {
        self.stream.write_all(&req.encode())?;
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
            FrameRead::Frame(body) => Response::decode(&body),
            FrameRead::Eof => Err(protocol("server closed the connection mid-request")),
            FrameRead::TimedOut => Err(protocol("server went silent mid-request")),
        }
    }

    /// Surface a server-side `Error` response as the typed error it is.
    fn reject(resp: Response, expected: &str) -> ZsmilesError {
        match resp {
            Response::Error { code, message } => {
                protocol(format!("server error ({code:?}): {message}"))
            }
            other => protocol(format!("expected {expected}, got {other:?}")),
        }
    }

    fn expect_lines(resp: Response) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        match resp {
            Response::Lines(lines) => Ok(lines),
            other => Err(QueryClient::reject(other, "a lines response")),
        }
    }

    /// Decompress one global line.
    pub fn get(&mut self, line: u64) -> Result<Vec<u8>, ZsmilesError> {
        let mut lines = QueryClient::expect_lines(self.roundtrip(&Request::Get { line })?)?;
        match lines.len() {
            1 => Ok(lines.pop().unwrap()),
            n => Err(protocol(format!("get returned {n} lines, expected 1"))),
        }
    }

    /// Decompress the contiguous run `start..end`.
    pub fn get_range(&mut self, start: u64, end: u64) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        QueryClient::expect_lines(self.roundtrip(&Request::GetRange { start, end })?)
    }

    /// Decompress an arbitrary set of lines, answered in request order.
    pub fn get_many(&mut self, lines: &[u64]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        QueryClient::expect_lines(self.roundtrip(&Request::GetMany {
            lines: lines.to_vec(),
        })?)
    }

    /// Run a `top_hits` screening campaign server-side: score every
    /// line of the served deck against `pattern` and return the best
    /// `k` rows (index, score, decompressed SMILES), best first, ties
    /// toward the smaller line number — byte-identical to running the
    /// campaign locally against the same deck. One round trip instead
    /// of a scan's worth of `get`s.
    pub fn top_hits(&mut self, k: u32, pattern: &str) -> Result<Vec<HitRow>, ZsmilesError> {
        match self.roundtrip(&Request::TopHits {
            k,
            pattern: pattern.into(),
        })? {
            Response::Hits(rows) => Ok(rows),
            other => Err(QueryClient::reject(other, "a hits response")),
        }
    }

    /// Start a pipelined exchange: up to `depth` requests in flight at
    /// once, responses strictly in submission order. See [`Pipeline`].
    pub fn pipeline(&mut self, depth: usize) -> Pipeline<'_> {
        Pipeline {
            client: self,
            depth: depth.max(1),
            pending: 0,
            wbuf: Vec::new(),
        }
    }

    /// Fetch an arbitrary set of lines as individual pipelined `get`
    /// frames, keeping up to `depth` of them in flight. Same result as
    /// [`QueryClient::get_many`] (request order preserved), but
    /// exercised through the pipelined path — and the server folds each
    /// contiguous in-flight run back into one batched deck read.
    pub fn get_many_pipelined(
        &mut self,
        lines: &[u64],
        depth: usize,
    ) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        let mut out = Vec::with_capacity(lines.len());
        let mut pipe = self.pipeline(depth);
        let take = |resp: Response| -> Result<Vec<u8>, ZsmilesError> {
            let mut lines = QueryClient::expect_lines(resp)?;
            match lines.len() {
                1 => Ok(lines.pop().unwrap()),
                n => Err(protocol(format!("get returned {n} lines, expected 1"))),
            }
        };
        for &line in lines {
            if let Some(resp) = pipe.send(&Request::Get { line })? {
                out.push(take(resp)?);
            }
        }
        while let Some(resp) = pipe.recv()? {
            out.push(take(resp)?);
        }
        Ok(out)
    }

    /// Server counters and the generation currently being served.
    pub fn stats(&mut self) -> Result<ServeStats, ZsmilesError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(QueryClient::reject(other, "a stats response")),
        }
    }

    /// The readiness/health probe: is the served deck complete, or
    /// degraded with quarantined shards?
    pub fn health(&mut self) -> Result<HealthStats, ZsmilesError> {
        match self.roundtrip(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(QueryClient::reject(other, "a health response")),
        }
    }

    /// Ask the server to atomically flip to the archive at the
    /// server-local `path`. Returns the generation now being served.
    pub fn flip(&mut self, path: &str) -> Result<u64, ZsmilesError> {
        match self.roundtrip(&Request::Flip { path: path.into() })? {
            Response::Flipped { generation } => Ok(generation),
            other => Err(QueryClient::reject(other, "a flipped response")),
        }
    }

    /// Ask the server to stop once in-flight connections drain.
    pub fn shutdown(&mut self) -> Result<(), ZsmilesError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(QueryClient::reject(other, "a bye response")),
        }
    }
}

/// A windowed pipelined exchange over one connection.
///
/// [`Pipeline::send`] buffers the encoded request; once the window is
/// full (`depth` requests unanswered) the buffer is flushed and the
/// *oldest* response is read and returned — so the wire carries up to
/// `depth` frames per direction between syscalls, and the caller still
/// sees responses strictly in the order it sent requests. Finish with
/// [`Pipeline::recv`] until it returns `None`.
///
/// Dropping a pipeline with responses still owed leaves the connection
/// mid-conversation — drain it first if the [`QueryClient`] is to be
/// reused.
#[derive(Debug)]
pub struct Pipeline<'a> {
    client: &'a mut QueryClient,
    depth: usize,
    /// Requests sent or buffered whose responses have not been read.
    pending: usize,
    /// Encoded request frames not yet written to the socket.
    wbuf: Vec<u8>,
}

impl Pipeline<'_> {
    /// How many responses are still owed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    fn flush(&mut self) -> Result<(), ZsmilesError> {
        if !self.wbuf.is_empty() {
            self.client.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    fn recv_one(&mut self) -> Result<Response, ZsmilesError> {
        match read_frame(&mut self.client.stream, MAX_RESPONSE_FRAME)? {
            FrameRead::Frame(body) => {
                self.pending -= 1;
                Response::decode(&body)
            }
            FrameRead::Eof => Err(protocol("server closed the connection mid-pipeline")),
            FrameRead::TimedOut => Err(protocol("server went silent mid-pipeline")),
        }
    }

    /// Queue `req`. Returns the oldest outstanding response once the
    /// window is full, `None` while it is still filling.
    pub fn send(&mut self, req: &Request) -> Result<Option<Response>, ZsmilesError> {
        self.wbuf.extend_from_slice(&req.encode());
        self.pending += 1;
        if self.pending >= self.depth {
            self.flush()?;
            return self.recv_one().map(Some);
        }
        Ok(None)
    }

    /// Read the next outstanding response (submission order), or `None`
    /// when every request has been answered.
    pub fn recv(&mut self) -> Result<Option<Response>, ZsmilesError> {
        if self.pending == 0 {
            return Ok(None);
        }
        self.flush()?;
        self.recv_one().map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn backoff_doubles_and_jitters_deterministically() {
        let opts = ClientOptions {
            backoff: Duration::from_millis(100),
            ..Default::default()
        };
        let addr: SocketAddr = "127.0.0.1:7878".parse().unwrap();
        let a0 = opts.backoff_for(0, &addr);
        let a1 = opts.backoff_for(1, &addr);
        let a2 = opts.backoff_for(2, &addr);
        // Within the ±25% jitter envelope of 100/200/400 ms.
        assert!((75..=125).contains(&(a0.as_millis() as u64)), "{a0:?}");
        assert!((150..=250).contains(&(a1.as_millis() as u64)), "{a1:?}");
        assert!((300..=500).contains(&(a2.as_millis() as u64)), "{a2:?}");
        // Deterministic: the same (addr, attempt) gives the same pause.
        assert_eq!(a0, opts.backoff_for(0, &addr));
        // Zero base disables the sleep entirely.
        let zero = ClientOptions::default();
        assert!(zero.backoff_for(3, &addr).is_zero());
    }

    #[test]
    fn read_timeout_unsticks_a_stalling_server() {
        // A listener that accepts and never answers: without a read
        // deadline the client would hang forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open, answering nothing, until dropped.
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let mut client = QueryClient::connect_with(
            addr,
            &ClientOptions {
                connect_timeout: Some(Duration::from_secs(1)),
                read_timeout: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        let err = client.stats().unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "timed out promptly, took {:?}",
            start.elapsed()
        );
        assert!(
            err.to_string().contains("silent"),
            "stall surfaces as a typed protocol error: {err}"
        );
        sink.join().unwrap();
    }

    #[test]
    fn connect_retries_are_bounded() {
        // Nothing listens here: bind then drop to get a (momentarily)
        // free port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = Instant::now();
        let err = QueryClient::connect_with(
            addr,
            &ClientOptions {
                connect_timeout: Some(Duration::from_millis(200)),
                retries: 2,
                backoff: Duration::from_millis(10),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ZsmilesError::Io(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "three bounded attempts, took {:?}",
            start.elapsed()
        );
    }
}
