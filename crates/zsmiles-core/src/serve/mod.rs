//! `zsmiles-serve`: a concurrent query service over compressed decks.
//!
//! Virtual screening at campaign scale is a *query-serving* problem, not
//! a storage problem: many workers want random access into the same
//! compressed deck at once. This module is the long-lived process that
//! answers them — it holds [`crate::shard::DeckReader`]s open over
//! `.zsa` / `.zsm` decks and serves `get` / `get_range` / `get_many` /
//! `stats` / `top_hits` requests from many simultaneous clients over a
//! small length-prefixed binary protocol on TCP. No async runtime, no
//! new crates: a `poll(2)`-driven event loop plus a small fixed worker
//! pool by default ([`server::Executor::Pooled`]), or the original
//! thread-per-connection model ([`server::Executor::Threaded`]), sharing
//! the deck through `Arc` snapshots either way.
//!
//! # Layers
//!
//! * [`protocol`] — the wire format: `u32` little-endian length prefix,
//!   one opcode byte, a fixed-layout body. [`protocol::Request`] /
//!   [`protocol::Response`] encode and decode strictly — a malformed,
//!   truncated or oversized frame is a typed
//!   [`crate::ZsmilesError::Protocol`] error, never a panic or a hang.
//! * [`server`] — [`server::Server::start`] binds a listener and returns
//!   a [`server::ServeHandle`]; each request runs against a snapshot of
//!   the current generation.
//! * [`event`] — the pooled executor: nonblocking sockets driven
//!   through per-connection state machines by one `poll(2)` thread,
//!   with decoded requests executed on the worker pool and contiguous
//!   `GET` runs batched into single `get_many` calls.
//! * [`client`] — [`client::QueryClient`], the blocking client the CLI
//!   `query` subcommand and the bench harness drive.
//!
//! # Pipelining
//!
//! Connections are pipelined under the pooled executor: a client may
//! have many requests in flight on one connection, and responses come
//! back *strictly in submission order* — the server sequences every
//! decoded frame and flushes completions in order no matter how the
//! worker pool interleaved them. The server stops reading a connection
//! once [`server::ServeOptions::pipeline_depth`] requests are in flight
//! or its write buffer fills (backpressure, not an error).
//! [`client::QueryClient::pipeline`] is the windowed driver;
//! [`client::QueryClient::get_many_pipelined`] fetches a line set with
//! up to `depth` `get` frames on the wire at once.
//!
//! # Generation flips
//!
//! The server's deck is a *generation*: the `.zsm` manifest's optional
//! `generation` row (v2 manifests; v1 reads as generation 0). A `flip`
//! request atomically replaces the served deck — the new deck opens
//! *before* the swap, the swap itself is one `RwLock` write, and every
//! request that already snapshotted the old generation drains on it
//! unharmed. When the last in-flight reference drops, the retired deck's
//! blocks are forgotten from its [`crate::cache::BlockCache`]
//! ([`crate::shard::DeckReader::retire_cached_blocks`]) so a flipped-away
//! dataset stops competing for cache budget. A flip that declares a
//! generation not newer than the current one is rejected; a deck that
//! declares none (generation 0) is assigned `current + 1`.

pub mod client;
pub mod event;
pub mod protocol;
pub mod server;

pub use client::{ClientOptions, Pipeline, QueryClient};
pub use protocol::{
    ErrorCode, HealthStats, HitRow, Request, Response, ServeStats, MAX_REQUEST_FRAME,
};
pub use server::{Executor, Screener, ServeHandle, ServeOptions, Server};
