//! `zsmiles-serve`: a concurrent query service over compressed decks.
//!
//! Virtual screening at campaign scale is a *query-serving* problem, not
//! a storage problem: many workers want random access into the same
//! compressed deck at once. This module is the long-lived process that
//! answers them — it holds [`crate::shard::DeckReader`]s open over
//! `.zsa` / `.zsm` decks and serves `get` / `get_range` / `get_many` /
//! `stats` requests from many simultaneous clients over a small
//! length-prefixed binary protocol on TCP. No async runtime, no new
//! crates: one accept thread plus one OS thread per connection, sharing
//! the deck through `Arc` snapshots.
//!
//! # Layers
//!
//! * [`protocol`] — the wire format: `u32` little-endian length prefix,
//!   one opcode byte, a fixed-layout body. [`protocol::Request`] /
//!   [`protocol::Response`] encode and decode strictly — a malformed,
//!   truncated or oversized frame is a typed
//!   [`crate::ZsmilesError::Protocol`] error, never a panic or a hang.
//! * [`server`] — [`server::Server::start`] binds a listener and returns
//!   a [`server::ServeHandle`]; each connection snapshots the current
//!   generation per request and answers from it.
//! * [`client`] — [`client::QueryClient`], the blocking client the CLI
//!   `query` subcommand and the bench harness drive.
//!
//! # Generation flips
//!
//! The server's deck is a *generation*: the `.zsm` manifest's optional
//! `generation` row (v2 manifests; v1 reads as generation 0). A `flip`
//! request atomically replaces the served deck — the new deck opens
//! *before* the swap, the swap itself is one `RwLock` write, and every
//! request that already snapshotted the old generation drains on it
//! unharmed. When the last in-flight reference drops, the retired deck's
//! blocks are forgotten from its [`crate::cache::BlockCache`]
//! ([`crate::shard::DeckReader::retire_cached_blocks`]) so a flipped-away
//! dataset stops competing for cache budget. A flip that declares a
//! generation not newer than the current one is rejected; a deck that
//! declares none (generation 0) is assigned `current + 1`.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientOptions, QueryClient};
pub use protocol::{ErrorCode, HealthStats, Request, Response, ServeStats, MAX_REQUEST_FRAME};
pub use server::{ServeHandle, ServeOptions, Server};
