//! The pooled executor: a readiness-driven event loop over `poll(2)`
//! plus a small fixed worker pool.
//!
//! One thread owns every socket. It sleeps in `poll(2)` (no tick), and
//! on each readiness event drains *every* complete frame a connection
//! has buffered, assigns each decoded request a per-connection sequence
//! number, and hands the batch to the workers — contiguous `GET` runs as
//! one batched `get_many` job against a single generation snapshot.
//! Workers push encoded response frames onto a completion queue and kick
//! the loop through a wakeup pipe; the loop flushes completions strictly
//! in sequence order, so a pipelining client always gets responses in
//! submission order no matter how the pool interleaved the work.
//!
//! Per-connection discipline mirrors the blocking `read_frame` path,
//! re-expressed as a state machine:
//!
//! * a bounded read buffer reassembles frames incrementally; a frame
//!   stalled mid-body past `STALL_PATIENCE` (slowloris) or with a
//!   zero/oversized length prefix gets a typed `BadFrame` error and the
//!   connection closes *after* earlier responses flush;
//! * a malformed frame *body* (the boundary held) gets an error response
//!   in its sequence slot and the connection lives on;
//! * a bounded write buffer applies backpressure — past
//!   `WBUF_LIMIT`, or with `ServeOptions::pipeline_depth` requests in
//!   flight, the loop simply stops reading that socket until the client
//!   drains responses.
//!
//! Over-cap connections are admitted just far enough to present one
//! frame: a `health` probe is answered, anything else (or silence past
//! the over-cap deadline) gets the typed `Busy`.
//!
//! When the pool is a single worker (one-CPU boxes), handing a cheap
//! deck read across threads buys no overlap — just a futex round trip
//! and two context switches per request — so the loop answers bounded
//! reads and counter snapshots inline and keeps only the slow ops
//! (`TOP_HITS` sweeps, `FLIP`'s deck open) on the pool.

use crate::error::ZsmilesError;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

use super::server::Shared;

/// How long a connection may sit mid-frame without delivering a byte
/// before it is declared stalled — the event-loop equivalent of
/// `read_frame`'s 100-tick patience window.
#[cfg(all(unix, target_pointer_width = "64"))]
const STALL_PATIENCE: std::time::Duration = std::time::Duration::from_secs(10);

/// Buffered-response bytes per connection past which the loop stops
/// reading that socket (backpressure, not an error).
#[cfg(all(unix, target_pointer_width = "64"))]
const WBUF_LIMIT: usize = 8 << 20;

/// Most over-cap connections held open for their one-frame grace at a
/// time; beyond this, over-cap connects get an immediate best-effort
/// `Busy`.
#[cfg(all(unix, target_pointer_width = "64"))]
const OVERCAP_LIMIT: usize = 64;

/// Most jobs a worker claims per queue lock. Under fan-in the loop
/// enqueues one job per ready connection in a single push, so claiming
/// a chunk amortizes the mutex/condvar round trip and the completion
/// wake over many requests instead of paying them per request, while
/// still splitting a full queue across the pool.
#[cfg(all(unix, target_pointer_width = "64"))]
const WORKER_BATCH: usize = 16;

/// Start the pooled executor. On platforms without the `poll(2)`
/// binding this transparently falls back to the threaded executor.
#[cfg(not(all(unix, target_pointer_width = "64")))]
pub(super) fn start(
    listener: TcpListener,
    shared: Arc<Shared>,
    _workers: usize,
) -> Result<JoinHandle<()>, ZsmilesError> {
    super::server::start_threaded(listener, shared)
}

/// Start the pooled executor: spawn the worker pool and the event-loop
/// thread, and register the wakeup-pipe waker so `begin_shutdown` can
/// kick the loop out of `poll(2)`.
#[cfg(all(unix, target_pointer_width = "64"))]
pub(super) fn start(
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
) -> Result<JoinHandle<()>, ZsmilesError> {
    imp::start(listener, shared, workers)
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod imp {
    use super::super::protocol::{ErrorCode, Request, Response};
    use super::super::server::{
        busy_response, default_workers, Shared, DRAIN_DEADLINE, OVERCAP_DEADLINE,
    };
    use super::{ZsmilesError, OVERCAP_LIMIT, STALL_PATIENCE, WBUF_LIMIT, WORKER_BATCH};
    use std::collections::{BTreeMap, HashMap, VecDeque};
    use std::io::{ErrorKind, PipeReader, PipeWriter, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::thread::{self, JoinHandle};
    use std::time::{Duration, Instant};

    /// Raw `poll(2)` binding, declared directly (the workspace is
    /// hermetic — no `libc` crate). The `pollfd` layout and event bits
    /// are identical on every 64-bit unix this crate targets; only the
    /// `nfds_t` width differs (`unsigned long` on Linux, `unsigned int`
    /// on the BSDs and macOS).
    mod poll_sys {
        use std::ffi::c_int;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;

        #[cfg(target_os = "linux")]
        pub type NFds = std::ffi::c_ulong;
        #[cfg(not(target_os = "linux"))]
        pub type NFds = std::ffi::c_uint;

        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        }
    }

    use poll_sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

    /// One unit of work for the pool.
    enum Job {
        /// A single decoded request.
        One { conn: u64, seq: u64, req: Request },
        /// A contiguous run of `GET`s from one connection, answered as a
        /// single `get_many` against one generation snapshot.
        GetRun {
            conn: u64,
            first_seq: u64,
            lines: Vec<u64>,
        },
    }

    /// One finished response frame, ready to flush in sequence order.
    struct Done {
        conn: u64,
        seq: u64,
        frame: Vec<u8>,
    }

    struct JobQueue {
        jobs: Mutex<(VecDeque<Job>, bool)>,
        ready: Condvar,
    }

    impl JobQueue {
        fn push(&self, batch: Vec<Job>) {
            let n = batch.len();
            let mut q = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            q.0.extend(batch);
            drop(q);
            if n == 1 {
                self.ready.notify_one();
            } else {
                self.ready.notify_all();
            }
        }

        fn close(&self) {
            self.jobs.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
            self.ready.notify_all();
        }

        /// Claim up to `max` queued jobs in one lock. Blocks while the
        /// queue is empty and open; `None` once closed and drained.
        fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
            let mut q = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !q.0.is_empty() {
                    let n = q.0.len().min(max);
                    return Some(q.0.drain(..n).collect());
                }
                if q.1 {
                    return None;
                }
                q = self.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// The workers' side of the completion path: push finished frames,
    /// then kick the event loop through the pipe. The armed flag keeps
    /// the pipe at most one byte deep — the loop drains the byte, resets
    /// the flag, then drains the queue, so a push can never be missed.
    struct Completions {
        done: Mutex<Vec<Done>>,
        armed: AtomicBool,
        pipe: PipeWriter,
    }

    impl Completions {
        fn finish(&self, batch: Vec<Done>) {
            self.done
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend(batch);
            self.wake();
        }

        fn wake(&self) {
            if !self.armed.swap(true, Ordering::SeqCst) {
                let _ = (&self.pipe).write(&[1u8]);
            }
        }

        fn drain(&self, pipe_readable: bool, reader: &PipeReader) -> Vec<Done> {
            if pipe_readable {
                let mut sink = [0u8; 16];
                let _ = (&*reader).read(&mut sink);
            }
            self.armed.store(false, Ordering::SeqCst);
            std::mem::take(&mut *self.done.lock().unwrap_or_else(PoisonError::into_inner))
        }
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        /// Partial/undecoded request bytes, reassembled incrementally.
        rbuf: Vec<u8>,
        /// Encoded responses not yet accepted by the socket.
        wbuf: Vec<u8>,
        /// Bytes of `wbuf` already written.
        wpos: usize,
        /// Sequence number the next decoded request gets.
        next_seq: u64,
        /// Sequence number of the next response to flush.
        next_flush: u64,
        /// Completed responses that arrived out of order.
        done: BTreeMap<u64, Vec<u8>>,
        /// The peer half-closed (or a fatal frame error stopped reads).
        read_closed: bool,
        /// An over-cap connection: one frame's grace, then close.
        overcap: bool,
        /// Slowloris / over-cap deadline, when one is running.
        deadline: Option<Instant>,
    }

    impl Conn {
        fn new(stream: TcpStream, overcap: bool) -> Conn {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_nonblocking(true);
            Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                next_seq: 0,
                next_flush: 0,
                done: BTreeMap::new(),
                read_closed: false,
                overcap,
                deadline: if overcap {
                    Some(Instant::now() + OVERCAP_DEADLINE)
                } else {
                    None
                },
            }
        }

        fn inflight(&self) -> u64 {
            self.next_seq - self.next_flush
        }

        fn wants_read(&self, depth: u64, rbuf_limit: usize) -> bool {
            !self.read_closed
                && self.inflight() < depth
                && self.rbuf.len() < rbuf_limit
                && self.wbuf.len() - self.wpos < WBUF_LIMIT
        }

        fn wants_write(&self) -> bool {
            self.wpos < self.wbuf.len()
        }

        /// Everything read, answered and flushed — time to close?
        fn finished(&self) -> bool {
            self.read_closed && self.inflight() == 0 && !self.wants_write()
        }

        /// Complete `seq` locally (decode errors, `bye`, over-cap
        /// answers) without a worker round trip.
        fn complete_local(&mut self, seq: u64, resp: &Response) {
            self.done.insert(seq, resp.encode());
        }

        /// Move in-order completions into the write buffer.
        fn flush_ready(&mut self) {
            while let Some(frame) = self.done.remove(&self.next_flush) {
                self.wbuf.extend_from_slice(&frame);
                self.next_flush += 1;
            }
            if self.wpos > 0 && self.wpos == self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
            }
        }

        /// Push buffered responses into the socket until it would block.
        /// Returns `false` on a fatal socket error.
        fn try_write(&mut self) -> bool {
            while self.wpos < self.wbuf.len() {
                match self.stream.write(&self.wbuf[self.wpos..]) {
                    Ok(0) => return false,
                    Ok(n) => self.wpos += n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => return false,
                }
            }
            if self.wpos == self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
            }
            true
        }

        /// Pull what the socket has (up to the buffer bound) into
        /// `rbuf`. One read per readiness event: `poll(2)` is
        /// level-triggered, so bytes beyond the first chunk simply
        /// re-report readable — draining to `WouldBlock` here would pay
        /// an extra empty `read(2)` on every round trip. A short read
        /// (the common case) is known complete without a second call.
        /// Returns `false` on a fatal socket error.
        fn try_read(&mut self, rbuf_limit: usize) -> bool {
            let mut chunk = [0u8; 64 * 1024];
            while self.rbuf.len() < rbuf_limit {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => return false,
                }
            }
            true
        }
    }

    fn stall_response(reason: String) -> Response {
        Response::Error {
            code: ErrorCode::BadFrame,
            message: reason,
        }
    }

    pub(in crate::serve) fn start(
        listener: TcpListener,
        shared: Arc<Shared>,
        workers: usize,
    ) -> Result<JoinHandle<()>, ZsmilesError> {
        let (pipe_r, pipe_w) = std::io::pipe()?;
        listener.set_nonblocking(true)?;
        let completions = Arc::new(Completions {
            done: Mutex::new(Vec::new()),
            armed: AtomicBool::new(false),
            pipe: pipe_w,
        });
        let waker = Arc::clone(&completions);
        shared.set_waker(Box::new(move || waker.wake()));
        let queue = Arc::new(JobQueue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let n_workers = if workers == 0 {
            default_workers()
        } else {
            workers
        };
        let mut pool = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            pool.push(
                thread::Builder::new()
                    .name(format!("zsmiles-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &shared, &completions))
                    .map_err(|e| ZsmilesError::Io(e.to_string()))?,
            );
        }
        thread::Builder::new()
            .name("zsmiles-serve-event".into())
            .spawn(move || {
                event_loop(
                    listener,
                    &shared,
                    &queue,
                    &completions,
                    &pipe_r,
                    n_workers == 1,
                );
                queue.close();
                for h in pool {
                    let _ = h.join();
                }
            })
            .map_err(|e| ZsmilesError::Io(e.to_string()))
    }

    fn worker_loop(queue: &JobQueue, shared: &Shared, completions: &Completions) {
        while let Some(batch) = queue.pop_batch(WORKER_BATCH) {
            let mut done: Vec<Done> = Vec::with_capacity(batch.len());
            for job in batch {
                match job {
                    Job::One { conn, seq, req } => {
                        let frame = shared.answer(req).encode();
                        done.push(Done { conn, seq, frame });
                    }
                    Job::GetRun {
                        conn,
                        first_seq,
                        lines,
                    } => {
                        let gen = shared.snapshot();
                        done.extend(
                            shared
                                .answer_get_run(&gen, &lines)
                                .into_iter()
                                .enumerate()
                                .map(|(i, resp)| Done {
                                    conn,
                                    seq: first_seq + i as u64,
                                    frame: resp.encode(),
                                }),
                        );
                    }
                }
            }
            completions.finish(done);
        }
    }

    /// Decode every complete frame sitting in `conn.rbuf` (respecting
    /// the pipeline-depth and buffer bounds), queueing worker jobs and
    /// local completions. Returns `true` if the shutdown flag was raised
    /// by a `bye` frame.
    fn parse_frames(conn_id: u64, conn: &mut Conn, shared: &Shared, jobs: &mut Vec<Job>) -> bool {
        let depth = if conn.overcap {
            1
        } else {
            shared.pipeline_depth as u64
        };
        let mut consumed = 0;
        let mut run: Vec<u64> = Vec::new();
        let mut run_first_seq = 0;
        let mut saw_shutdown = false;
        // Did parsing stop on a frame the peer has not finished sending?
        // (As opposed to stopping on the depth cap with complete frames
        // still buffered.)
        let mut incomplete = false;
        loop {
            if conn.inflight() + run.len() as u64 >= depth
                || conn.wbuf.len() - conn.wpos >= WBUF_LIMIT
            {
                break;
            }
            let avail = &conn.rbuf[consumed..];
            if avail.is_empty() {
                break;
            }
            if avail.len() < 4 {
                incomplete = true;
                break;
            }
            let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
            if len == 0 || len > shared.max_request_frame {
                // Frame boundary lost: typed error in this request's
                // slot, then no more reads — earlier responses still
                // flush first.
                let reason = if len == 0 {
                    "zero-length frame (no opcode)".to_string()
                } else {
                    format!(
                        "oversized frame: {len} bytes declared, cap is {}",
                        shared.max_request_frame
                    )
                };
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.complete_local(seq, &stall_response(reason));
                conn.read_closed = true;
                conn.rbuf.clear();
                consumed = 0;
                break;
            }
            if avail.len() < 4 + len {
                incomplete = true;
                break; // partial frame — wait for more bytes
            }
            let body = &avail[4..4 + len];
            let decoded = Request::decode(body);
            consumed += 4 + len;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match decoded {
                Err(e) => {
                    // Boundary held; only the body was bad. Error in
                    // this slot, connection survives. The pending GET
                    // run ends here — its seqs must stay contiguous.
                    flush_run(conn_id, &mut run, run_first_seq, jobs);
                    conn.complete_local(seq, &stall_response(e.to_string()));
                }
                Ok(req) if conn.overcap => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    let resp = match req {
                        Request::Health => Response::Health(shared.health_snapshot()),
                        _ => busy_response(shared.max_connections),
                    };
                    conn.complete_local(seq, &resp);
                    conn.read_closed = true;
                    conn.deadline = None;
                    break;
                }
                Ok(Request::Shutdown) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    flush_run(conn_id, &mut run, run_first_seq, jobs);
                    conn.complete_local(seq, &Response::Bye);
                    conn.read_closed = true;
                    saw_shutdown = true;
                    break;
                }
                Ok(Request::Get { line }) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    if run.is_empty() {
                        run_first_seq = seq;
                    }
                    run.push(line);
                }
                Ok(req) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    flush_run(conn_id, &mut run, run_first_seq, jobs);
                    jobs.push(Job::One {
                        conn: conn_id,
                        seq,
                        req,
                    });
                }
            }
        }
        flush_run(conn_id, &mut run, run_first_seq, jobs);
        conn.rbuf.drain(..consumed);
        if incomplete && conn.read_closed {
            // The peer half-closed inside a frame: same typed error the
            // blocking read path raises, then no more slots.
            let avail = conn.rbuf.len();
            let what = if avail < 4 {
                format!("length prefix ({avail} of 4 bytes)")
            } else {
                let len = u32::from_le_bytes(conn.rbuf[..4].try_into().unwrap()) as usize;
                format!("frame body ({} of {len} bytes)", avail - 4)
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.complete_local(
                seq,
                &stall_response(format!("truncated frame: peer closed inside {what}")),
            );
            conn.rbuf.clear();
        }
        // Slowloris bookkeeping: a partial frame arms the stall
        // deadline; progress (or an empty buffer) resets it.
        if !conn.overcap {
            conn.deadline = if conn.rbuf.is_empty() || conn.read_closed {
                None
            } else {
                Some(Instant::now() + STALL_PATIENCE)
            };
        }
        conn.flush_ready();
        saw_shutdown
    }

    /// Emit a pending `GET` run: one request stays a single job, two or
    /// more become a batched `get_many` against one snapshot.
    fn flush_run(conn_id: u64, run: &mut Vec<u64>, first_seq: u64, jobs: &mut Vec<Job>) {
        match run.len() {
            0 => {}
            1 => jobs.push(Job::One {
                conn: conn_id,
                seq: first_seq,
                req: Request::Get { line: run[0] },
            }),
            _ => jobs.push(Job::GetRun {
                conn: conn_id,
                first_seq,
                lines: std::mem::take(run),
            }),
        }
        run.clear();
    }

    fn event_loop(
        listener: TcpListener,
        shared: &Shared,
        queue: &JobQueue,
        completions: &Completions,
        pipe_r: &PipeReader,
        inline_cheap: bool,
    ) {
        let rbuf_limit = shared.max_request_frame + 4 + 64 * 1024;
        let depth = shared.pipeline_depth as u64;
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn_id: u64 = 0;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut fd_conns: Vec<u64> = Vec::new();
        let mut rotation: usize = 0;
        let mut drain_deadline: Option<Instant> = None;
        let mut poll_failures = 0u32;
        loop {
            let draining = shared.shutdown.load(Ordering::SeqCst);
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                // No new requests during drain: in-flight work finishes
                // and flushes, unread pipeline tails are abandoned.
                for conn in conns.values_mut() {
                    conn.read_closed = true;
                    conn.rbuf.clear();
                    conn.deadline = None;
                }
            }
            conns.retain(|_, conn| {
                let keep = !conn.finished();
                if !keep && !conn.overcap {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                }
                keep
            });
            if draining {
                let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
                if conns.is_empty() || expired {
                    for (_, conn) in conns.drain() {
                        if !conn.overcap {
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    return;
                }
            }

            // Build the poll set: listener, wakeup pipe, then every
            // connection with its current interest.
            fds.clear();
            fd_conns.clear();
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: if draining { 0 } else { POLLIN },
                revents: 0,
            });
            fds.push(PollFd {
                fd: pipe_r.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            let mut nearest: Option<Instant> = drain_deadline;
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if conn.wants_read(depth, rbuf_limit) {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                fd_conns.push(id);
                if let Some(d) = conn.deadline {
                    nearest = Some(nearest.map_or(d, |n| n.min(d)));
                }
            }
            let timeout_ms: i32 = match nearest {
                None => -1,
                Some(d) => {
                    d.saturating_duration_since(Instant::now())
                        .as_millis()
                        .min(i32::MAX as u128) as i32
                        + 1
                }
            };
            let rc = unsafe {
                poll_sys::poll(fds.as_mut_ptr(), fds.len() as poll_sys::NFds, timeout_ms)
            };
            if rc < 0 {
                // EINTR and friends: back off briefly; a persistently
                // failing poll (EBADF would be a bug) must not spin.
                poll_failures += 1;
                if poll_failures > 1000 {
                    return;
                }
                thread::sleep(Duration::from_millis(1));
                continue;
            }
            poll_failures = 0;
            let now = Instant::now();
            let mut jobs: Vec<Job> = Vec::new();
            let mut saw_shutdown = false;

            // 1. Completions: drain the pipe and the queue, flush
            //    in-order responses, and re-parse buffers that were
            //    blocked on the depth cap.
            let pipe_ready = fds[1].revents & (POLLIN | POLLERR | POLLHUP) != 0;
            let finished = completions.drain(pipe_ready, pipe_r);
            if !finished.is_empty() {
                saw_shutdown |= apply_finished(&mut conns, finished, shared, &mut jobs);
            }

            // 2. Socket readiness per connection. The scan start
            //    rotates each round: a fixed order would service the
            //    same connections last every time, and under fan-in
            //    that systematic bias is exactly the p99.
            rotation = rotation.wrapping_add(1);
            for k in 0..fd_conns.len() {
                let i = (k + rotation) % fd_conns.len();
                let id = fd_conns[i];
                let revents = fds[i + 2].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if revents & (POLLERR | POLLNVAL) != 0 {
                    conn.read_closed = true;
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    conn.next_flush = conn.next_seq;
                    continue;
                }
                let mut alive = true;
                if revents & (POLLIN | POLLHUP) != 0 && !conn.read_closed {
                    alive = conn.try_read(rbuf_limit);
                    if alive {
                        saw_shutdown |= parse_frames(id, conn, shared, &mut jobs);
                    }
                }
                if alive && (revents & POLLOUT != 0 || conn.wants_write()) {
                    alive = conn.try_write();
                }
                if !alive {
                    conn.read_closed = true;
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    conn.next_flush = conn.next_seq;
                }
            }

            // 3. Deadlines: stalled mid-frame readers and silent
            //    over-cap connections.
            for (&id, conn) in conns.iter_mut() {
                if conn.deadline.is_none_or(|d| d > now) {
                    continue;
                }
                conn.deadline = None;
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let resp = if conn.overcap {
                    busy_response(shared.max_connections)
                } else {
                    stall_response(format!(
                        "stalled mid-frame: {} buffered bytes, no progress for {:?}",
                        conn.rbuf.len(),
                        STALL_PATIENCE
                    ))
                };
                conn.complete_local(seq, &resp);
                conn.read_closed = true;
                conn.rbuf.clear();
                conn.flush_ready();
                if !conn.try_write() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    conn.next_flush = conn.next_seq;
                }
                let _ = id;
            }

            // 4. New connections.
            if fds[0].revents & POLLIN != 0 && !draining {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let active = shared.active.load(Ordering::SeqCst) as usize;
                            let overcap = active >= shared.max_connections;
                            if overcap
                                && conns.values().filter(|c| c.overcap).count() >= OVERCAP_LIMIT
                            {
                                // Past even the grace budget: best-effort
                                // immediate busy, then close.
                                let mut s = stream;
                                let _ = s.set_nonblocking(true);
                                let _ = s.write(&busy_response(shared.max_connections).encode());
                                continue;
                            }
                            if !overcap {
                                shared.active.fetch_add(1, Ordering::SeqCst);
                            }
                            let id = next_conn_id;
                            next_conn_id += 1;
                            conns.insert(id, Conn::new(stream, overcap));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }

            // 5. With a single worker the pool cannot overlap cheap
            //    deck reads with anything — handing them off only buys a
            //    futex round trip and two context switches per request —
            //    so answer them inline on the loop thread and keep the
            //    pool for ops that are slow (`TOP_HITS` sweeps) or do
            //    their own I/O (`FLIP`). Applying the responses can
            //    unblock depth-capped frames already sitting in read
            //    buffers, so loop until no inline-eligible work remains
            //    (both buffers are bounded, so this terminates).
            if inline_cheap {
                loop {
                    let mut pooled: Vec<Job> = Vec::new();
                    let mut done: Vec<Done> = Vec::new();
                    for job in jobs.drain(..) {
                        match job {
                            Job::One { conn, seq, req } if inline_eligible(&req) => {
                                let frame = shared.answer(req).encode();
                                done.push(Done { conn, seq, frame });
                            }
                            Job::GetRun {
                                conn,
                                first_seq,
                                lines,
                            } => {
                                let gen = shared.snapshot();
                                done.extend(
                                    shared
                                        .answer_get_run(&gen, &lines)
                                        .into_iter()
                                        .enumerate()
                                        .map(|(i, resp)| Done {
                                            conn,
                                            seq: first_seq + i as u64,
                                            frame: resp.encode(),
                                        }),
                                );
                            }
                            other => pooled.push(other),
                        }
                    }
                    jobs = pooled;
                    if done.is_empty() {
                        break;
                    }
                    saw_shutdown |= apply_finished(&mut conns, done, shared, &mut jobs);
                }
            }
            if !jobs.is_empty() {
                queue.push(jobs);
            }
            if saw_shutdown {
                shared.begin_shutdown();
            }
        }
    }

    /// Requests cheap enough to answer on the event-loop thread when
    /// the pool is a single worker: bounded deck reads and counter
    /// snapshots. `FLIP` (opens a new deck) and `TOP_HITS` (scores the
    /// whole deck) stay on the pool so the loop never blocks on them.
    fn inline_eligible(req: &Request) -> bool {
        matches!(
            req,
            Request::Get { .. }
                | Request::GetRange { .. }
                | Request::GetMany { .. }
                | Request::Stats
                | Request::Health
        )
    }

    /// Flush a batch of finished response frames: slot each into its
    /// connection's sequence map, move in-order completions to the
    /// write buffers, push them into the sockets, and re-parse read
    /// buffers that the freed in-flight slots may have unblocked
    /// (queueing any newly decoded requests onto `jobs`).
    fn apply_finished(
        conns: &mut HashMap<u64, Conn>,
        finished: Vec<Done>,
        shared: &Shared,
        jobs: &mut Vec<Job>,
    ) -> bool {
        let mut saw_shutdown = false;
        let mut touched: Vec<u64> = Vec::with_capacity(finished.len());
        for done in finished {
            if let Some(conn) = conns.get_mut(&done.conn) {
                conn.done.insert(done.seq, done.frame);
                touched.push(done.conn);
            }
        }
        touched.dedup();
        for id in touched {
            if let Some(conn) = conns.get_mut(&id) {
                conn.flush_ready();
                if !conn.try_write() {
                    conn.read_closed = true;
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    conn.next_flush = conn.next_seq;
                    continue;
                }
                // Freed in-flight slots may unblock frames that are
                // already sitting in the read buffer.
                if !conn.rbuf.is_empty() {
                    saw_shutdown |= parse_frames(id, conn, shared, jobs);
                    if !conn.try_write() {
                        conn.read_closed = true;
                        conn.wbuf.clear();
                        conn.wpos = 0;
                        conn.next_flush = conn.next_seq;
                    }
                }
            }
        }
        saw_shutdown
    }
}
