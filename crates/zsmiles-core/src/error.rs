//! Error type for the ZSMILES codec.

use std::fmt;

/// Everything that can go wrong while training, loading, compressing or
/// decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZsmilesError {
    /// Pre-processing failed (the input line is not valid SMILES).
    Preprocess(smiles::SmilesError),
    /// The training set produced no usable patterns.
    EmptyTrainingSet,
    /// `Lmin`/`Lmax` out of range (`2 ≤ Lmin ≤ Lmax ≤ 16`).
    BadLengthBounds { lmin: usize, lmax: usize },
    /// A compressed line references a code with no dictionary entry.
    UnknownCode { code: u8, at: usize },
    /// A compressed line ends in the middle of an escape sequence.
    TruncatedEscape { at: usize },
    /// A compressed line ends after a wide-code page byte (wide-code
    /// extension only; see [`crate::wide`]).
    TruncatedWideCode { at: usize },
    /// Dictionary file violations.
    DictFormat { line: usize, reason: String },
    /// `.zsa` container violations (bad magic, CRC mismatch, inconsistent
    /// section sizes).
    ArchiveFormat { reason: String },
    /// `.zsm` shard-manifest violations (bad magic, inconsistent shard
    /// table, shard files that do not match their manifest entry).
    ManifestFormat { reason: String },
    /// A random-access request past the end of an archive.
    LineOutOfRange { line: usize, len: usize },
    /// A byte-range read past the end of an [`crate::source::ArchiveSource`].
    SourceOutOfBounds {
        offset: u64,
        len: usize,
        available: u64,
    },
    /// A requested operation is not implemented for the dictionary flavour
    /// at hand (e.g. staging a wide dictionary onto the GPU layout).
    Unsupported { what: String },
    /// The requested dictionary size exceeds the available code space.
    CodeSpaceExhausted { requested: usize, available: usize },
    /// An input line contains a byte the dictionary cannot express and
    /// escaping is disabled.
    Unencodable { byte: u8, at: usize },
    /// Wire-protocol violations on the serving path (bad frame length,
    /// unknown opcode, malformed body, server-reported failure).
    Protocol { reason: String },
    /// A line was routed to a shard that a degraded-mode open has
    /// quarantined (failed its integrity cross-checks or would not
    /// open). The rest of the deck keeps serving.
    ShardUnavailable { shard: String, line: usize },
    /// I/O error (stringified: io::Error is not Clone/PartialEq).
    Io(String),
}

impl fmt::Display for ZsmilesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ZsmilesError::*;
        match self {
            Preprocess(e) => write!(f, "pre-processing failed: {e}"),
            EmptyTrainingSet => write!(f, "training set contains no usable substrings"),
            BadLengthBounds { lmin, lmax } => {
                write!(f, "invalid substring length bounds [{lmin}, {lmax}]")
            }
            UnknownCode { code, at } => {
                write!(
                    f,
                    "compressed stream references unassigned code 0x{code:02x} at byte {at}"
                )
            }
            TruncatedEscape { at } => {
                write!(f, "escape marker at byte {at} has no following literal")
            }
            TruncatedWideCode { at } => {
                write!(f, "wide-code page byte at {at} has no following sub-code")
            }
            DictFormat { line, reason } => {
                write!(f, "dictionary file line {line}: {reason}")
            }
            ArchiveFormat { reason } => {
                write!(f, "archive container: {reason}")
            }
            ManifestFormat { reason } => {
                write!(f, "shard manifest: {reason}")
            }
            LineOutOfRange { line, len } => {
                write!(f, "line {line} out of range (archive has {len} lines)")
            }
            SourceOutOfBounds {
                offset,
                len,
                available,
            } => {
                write!(
                    f,
                    "read of {len} bytes at offset {offset} past end of source \
                     ({available} bytes available)"
                )
            }
            Unsupported { what } => write!(f, "unsupported: {what}"),
            CodeSpaceExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "dictionary wants {requested} codes but only {available} are free"
                )
            }
            Unencodable { byte, at } => {
                write!(f, "byte 0x{byte:02x} at {at} has no dictionary entry")
            }
            Protocol { reason } => write!(f, "wire protocol: {reason}"),
            ShardUnavailable { shard, line } => {
                write!(
                    f,
                    "line {line} is on quarantined shard '{shard}' (deck is degraded)"
                )
            }
            Io(msg) => write!(f, "I/O: {msg}"),
        }
    }
}

impl std::error::Error for ZsmilesError {}

impl From<smiles::SmilesError> for ZsmilesError {
    fn from(e: smiles::SmilesError) -> Self {
        ZsmilesError::Preprocess(e)
    }
}

impl From<std::io::Error> for ZsmilesError {
    fn from(e: std::io::Error) -> Self {
        ZsmilesError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ZsmilesError::UnknownCode { code: 0x80, at: 3 }
            .to_string()
            .contains("0x80"));
        assert!(ZsmilesError::CodeSpaceExhausted {
            requested: 300,
            available: 222
        }
        .to_string()
        .contains("300"));
        let e: ZsmilesError = smiles::SmilesError::EmptyInput.into();
        assert!(matches!(e, ZsmilesError::Preprocess(_)));
    }
}
