//! Byte-range sources for out-of-core archive reading.
//!
//! The `.zsa` random-access story only pays off when a reader transfers
//! the bytes it needs and nothing else — the FSST argument, applied to
//! billion-line screening decks that do not fit in RAM. [`ArchiveSource`]
//! is that contract: a positioned `read_at` over an immutable byte
//! container, `pread`-style, with shared (`&self`) access so any number
//! of worker threads can fetch lines concurrently.
//!
//! Implementations:
//!
//! * [`FileSource`] — a `.zsa` file on disk, read with positioned I/O
//!   (`pread` on unix; a seek-guarded fallback elsewhere). No part of the
//!   payload is resident beyond the ranges a caller asks for.
//! * [`MmapSource`] — the same file mapped read-only into the address
//!   space with direct `mmap(2)` bindings (no crates): `read_at` becomes
//!   a bounds-checked memcpy with no syscall per fetch, and the kernel's
//!   page cache is the only residency. Falls back to [`FileSource`]
//!   behaviour on platforms without the bindings.
//! * [`CachedSource`] — a thin per-source adapter over the process-wide
//!   sharded LRU [`crate::cache::BlockCache`]: aligned blocks keyed
//!   `(archive_id, block)`, shared safely by concurrent readers.
//! * [`AutoSource`] — the policy in one place: mmap when the platform
//!   has it, cached positioned I/O otherwise. [`crate::shard::DeckReader`]
//!   opens archives through it by default.
//! * [`InMemorySource`] — an owned byte buffer, for archives already in
//!   memory. `&[u8]` implements the trait too, for zero-copy views.
//! * [`CountingSource`] — a transparent wrapper that counts read calls
//!   and bytes transferred; it is how the test suite *proves* `get(line)`
//!   touches only metadata plus one line's range, and how the CLI reports
//!   bytes-read in `inspect --archive` verbose mode.

use crate::cache::BlockCache;
use crate::error::ZsmilesError;
use std::fs::File;
use std::mem::ManuallyDrop;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A random-access byte container an [`crate::reader::ArchiveReader`] can
/// serve line fetches from. Object-safe; all access is through `&self` so
/// one source can back concurrent readers.
pub trait ArchiveSource {
    /// Total size of the container in bytes.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` with the bytes at `offset..offset + buf.len()`.
    /// Reads past the end are an error ([`ZsmilesError::SourceOutOfBounds`]),
    /// never a short read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError>;

    /// Convenience: read `len` bytes at `offset` into a fresh buffer.
    fn read_range(&self, offset: u64, len: usize) -> Result<Vec<u8>, ZsmilesError> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf)?;
        Ok(buf)
    }
}

/// Bounds check shared by every implementation, so out-of-range requests
/// fail identically everywhere.
fn check_bounds(available: u64, offset: u64, len: usize) -> Result<(), ZsmilesError> {
    match offset.checked_add(len as u64) {
        Some(end) if end <= available => Ok(()),
        _ => Err(ZsmilesError::SourceOutOfBounds {
            offset,
            len,
            available,
        }),
    }
}

impl ArchiveSource for [u8] {
    fn len(&self) -> u64 {
        <[u8]>::len(self) as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(<[u8]>::len(self) as u64, offset, buf.len())?;
        let at = offset as usize;
        buf.copy_from_slice(&self[at..at + buf.len()]);
        Ok(())
    }
}

impl<S: ArchiveSource + ?Sized> ArchiveSource for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        (**self).read_at(offset, buf)
    }
}

/// An owned in-memory archive image. The all-in-RAM convenience case —
/// [`crate::Archive`] reading is built on it.
#[derive(Debug, Clone, Default)]
pub struct InMemorySource {
    bytes: Vec<u8>,
}

impl InMemorySource {
    pub fn new(bytes: Vec<u8>) -> Self {
        InMemorySource { bytes }
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl From<Vec<u8>> for InMemorySource {
    fn from(bytes: Vec<u8>) -> Self {
        InMemorySource { bytes }
    }
}

impl ArchiveSource for InMemorySource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        self.bytes.as_slice().read_at(offset, buf)
    }
}

/// A `.zsa` file on disk, read with positioned I/O. The file stays on
/// disk; only requested ranges are transferred, so archives far larger
/// than RAM serve O(1) line fetches.
#[derive(Debug)]
pub struct FileSource {
    file: File,
    len: u64,
    /// Positioned reads need a seek on platforms without `pread`; the
    /// guard keeps concurrent readers from interleaving seek/read pairs.
    #[cfg(not(unix))]
    seek_guard: std::sync::Mutex<()>,
}

impl FileSource {
    pub fn open(path: &Path) -> Result<FileSource, ZsmilesError> {
        FileSource::from_file(File::open(path)?)
    }

    pub fn from_file(file: File) -> Result<FileSource, ZsmilesError> {
        let len = file.metadata()?.len();
        Ok(FileSource {
            file,
            len,
            #[cfg(not(unix))]
            seek_guard: std::sync::Mutex::new(()),
        })
    }
}

impl ArchiveSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(self.len, offset, buf.len())?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _guard = self.seek_guard.lock().expect("seek guard poisoned");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)?;
        }
        Ok(())
    }
}

/// Raw `mmap(2)`/`munmap(2)` bindings. Declared directly (the workspace
/// is hermetic — no `libc` crate); the constants below are identical on
/// every 64-bit unix this crate targets (Linux, macOS, the BSDs).
#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap_sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A `.zsa` file mapped read-only into the address space.
///
/// `read_at` becomes a bounds-checked `memcpy` from the mapping — no
/// syscall per fetch, no user-space residency beyond what the kernel's
/// page cache already keeps — which is what turns `get(line)` from a
/// `pread` round trip into a few hundred nanoseconds. The mapping is
/// `PROT_READ`/`MAP_SHARED` over the whole file and is unmapped on drop.
///
/// **Immutability contract:** `.zsa` archives are finalized files; the
/// reader stack never maps a file that is still being written. Truncating
/// a mapped archive out from under a reader is undefined at the OS level
/// (`SIGBUS` on fault) exactly as it is for every mmap consumer — the
/// same operational rule as for `pread` readers, enforced one level
/// harder.
///
/// On platforms without the bindings (non-unix, or 32-bit targets where
/// the raw `off_t` ABI is not uniform) `MmapSource` transparently falls
/// back to positioned file I/O; [`MmapSource::is_mapped`] reports which
/// mode is live so callers can surface it.
#[cfg(all(unix, target_pointer_width = "64"))]
#[derive(Debug)]
pub struct MmapSource {
    /// Base of the mapping; null for empty files (nothing to map).
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and private to this value for writes
// (there are none); concurrent `read_at` calls only ever read the
// immutable mapped bytes.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MmapSource {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MmapSource {}

#[cfg(all(unix, target_pointer_width = "64"))]
impl MmapSource {
    pub fn open(path: &Path) -> Result<MmapSource, ZsmilesError> {
        MmapSource::from_file(&File::open(path)?)
    }

    /// Map an already-open file. The file handle is not retained — the
    /// mapping outlives it by POSIX semantics.
    pub fn from_file(file: &File) -> Result<MmapSource, ZsmilesError> {
        use std::os::unix::io::AsRawFd;
        let len64 = file.metadata()?.len();
        let len = usize::try_from(len64)
            .map_err(|_| ZsmilesError::Io(format!("file too large to map: {len64} bytes")))?;
        if len == 0 {
            return Ok(MmapSource {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: null addr + PROT_READ + MAP_SHARED over a real fd is
        // the plain read-only whole-file mapping; failure is reported as
        // MAP_FAILED (-1) with errno set, checked below.
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as usize == usize::MAX {
            return Err(ZsmilesError::Io(format!(
                "mmap failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(MmapSource { ptr, len })
    }

    /// Whether reads are actually served from a mapping (always true on
    /// this platform; the fallback build reports false).
    pub fn is_mapped(&self) -> bool {
        true
    }

    /// Bytes of address space the mapping covers.
    pub fn bytes_mapped(&self) -> u64 {
        self.len as u64
    }

    /// Zero-copy view of the whole archive image.
    pub fn as_bytes(&self) -> &[u8] {
        if self.ptr.is_null() {
            &[]
        } else {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in `Drop`, and never written.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MmapSource {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr`/`len` are the exact mapping from `from_file`;
            // unmapping a valid mapping cannot fail in a way we could
            // recover from in a destructor, so the result is ignored.
            unsafe {
                mmap_sys::munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl ArchiveSource for MmapSource {
    fn len(&self) -> u64 {
        self.len as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(self.len as u64, offset, buf.len())?;
        let at = offset as usize;
        buf.copy_from_slice(&self.as_bytes()[at..at + buf.len()]);
        Ok(())
    }
}

/// Fallback `MmapSource` for platforms without the raw bindings:
/// positioned file I/O with the same API, so callers compile unchanged.
#[cfg(not(all(unix, target_pointer_width = "64")))]
#[derive(Debug)]
pub struct MmapSource {
    inner: FileSource,
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
impl MmapSource {
    pub fn open(path: &Path) -> Result<MmapSource, ZsmilesError> {
        Ok(MmapSource {
            inner: FileSource::open(path)?,
        })
    }

    pub fn from_file(file: &File) -> Result<MmapSource, ZsmilesError> {
        Ok(MmapSource {
            inner: FileSource::from_file(file.try_clone()?)?,
        })
    }

    pub fn is_mapped(&self) -> bool {
        false
    }

    pub fn bytes_mapped(&self) -> u64 {
        0
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
impl ArchiveSource for MmapSource {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        self.inner.read_at(offset, buf)
    }
}

/// Default aligned-block size for [`CachedSource`] (256 KiB — a few
/// thousand compressed lines per transfer).
pub const DEFAULT_CACHE_BLOCK: usize = 256 << 10;

/// A thin per-source adapter over the shared sharded LRU
/// [`BlockCache`].
///
/// Random-access loops over a `.zsa` — a campaign fetching a run of hits,
/// the CLI printing `--count` consecutive lines — issue many small
/// `read_at`s that land near each other. `CachedSource` maps them onto
/// aligned blocks in a [`BlockCache`]: a miss loads one whole block from
/// the inner source; neighbouring reads then hit resident bytes. By
/// default every `CachedSource` in the process shares
/// [`BlockCache::global`] — concurrent readers over one archive (or
/// many) populate and reuse a single pool, each under its own
/// `archive_id` so blocks never alias across files. Requests at or above
/// the block size bypass the cache entirely, so batched iteration does
/// not thrash it.
///
/// The per-source hit/miss counters report this source's traffic only;
/// [`BlockCache::stats`] aggregates the pool. Dropping a `CachedSource`
/// forgets its blocks, so short-lived sources do not pin budget.
#[derive(Debug)]
pub struct CachedSource<S> {
    inner: ManuallyDrop<S>,
    cache: Arc<BlockCache>,
    archive_id: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: ArchiveSource> CachedSource<S> {
    /// Adapter over the process-global [`BlockCache::global`] pool.
    pub fn new(inner: S) -> Self {
        CachedSource::with_cache(inner, Arc::clone(BlockCache::global()))
    }

    /// Adapter over a specific (possibly private) cache.
    pub fn with_cache(inner: S, cache: Arc<BlockCache>) -> Self {
        let archive_id = cache.register_archive();
        CachedSource {
            inner: ManuallyDrop::new(inner),
            cache,
            archive_id,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Adapter over a fresh private cache with the given block size (a
    /// few dozen blocks of budget) — for tests and tools that want
    /// deterministic residency instead of the shared pool.
    pub fn with_block_size(inner: S, block_size: usize) -> Self {
        let block_size = block_size.max(1);
        CachedSource::with_cache(
            inner,
            Arc::new(BlockCache::new(
                block_size,
                block_size.saturating_mul(4 * crate::cache::SHARD_COUNT),
            )),
        )
    }

    /// Reads (per covering block) served from resident bytes.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Reads (per covering block) that loaded from the inner source,
    /// plus block-sized bypasses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cache this source populates.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Retire this source's blocks from the pool *now*, without waiting
    /// for drop — the hook a serving process uses when it flips to a new
    /// dataset generation and wants the old archive's budget back
    /// immediately. Returns how many resident blocks left the pool; the
    /// eventual drop re-forgets harmlessly (0). The source stays usable:
    /// later reads simply reload.
    pub fn retire(&self) -> u64 {
        self.cache.forget_archive(self.archive_id)
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(mut self) -> S {
        self.cache.forget_archive(self.archive_id);
        // SAFETY: `inner` is taken exactly once; `self` is forgotten
        // immediately after so `Drop` never sees the hollowed-out value.
        let inner = unsafe { ManuallyDrop::take(&mut self.inner) };
        std::mem::forget(self);
        inner
    }
}

impl<S> Drop for CachedSource<S> {
    fn drop(&mut self) {
        self.cache.forget_archive(self.archive_id);
        // SAFETY: `Drop` runs at most once, and `into_inner` forgets
        // `self` before this could run a second time on a taken value.
        unsafe { ManuallyDrop::drop(&mut self.inner) }
    }
}

impl<S: ArchiveSource> ArchiveSource for CachedSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        let available = self.inner.len();
        check_bounds(available, offset, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        let bs = self.cache.block_size() as u64;
        if buf.len() as u64 >= bs {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.inner.read_at(offset, buf);
        }
        let first = offset / bs;
        let last = (offset + buf.len() as u64 - 1) / bs;
        let mut filled = 0usize;
        for block in first..=last {
            let block_start = block * bs;
            let block_len = bs.min(available - block_start) as usize;
            let (bytes, hit) = self.cache.get_or_load(self.archive_id, block, || {
                self.inner.read_range(block_start, block_len)
            })?;
            if hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            let at = (offset + filled as u64 - block_start) as usize;
            let take = (buf.len() - filled).min(bytes.len() - at);
            buf[filled..filled + take].copy_from_slice(&bytes[at..at + take]);
            filled += take;
        }
        debug_assert_eq!(filled, buf.len(), "covering blocks fill the request");
        Ok(())
    }
}

/// The default way to open an archive file for reading: mmap where the
/// platform supports it, shared-cache positioned I/O everywhere else
/// (including filesystems where `mmap` itself fails at run time).
///
/// [`crate::shard::DeckReader::open`] and
/// [`crate::reader::ArchiveReader::open_auto`] build on this; the CLI
/// surfaces which mode is live via [`AutoSource::bytes_mapped`] and
/// [`AutoSource::cache_counters`] in `--verbose` reports.
#[derive(Debug)]
pub enum AutoSource {
    /// Zero-syscall reads from a live mapping.
    Mmap(MmapSource),
    /// Positioned I/O through the shared block cache.
    Cached(CachedSource<FileSource>),
}

impl AutoSource {
    pub fn open(path: &Path) -> Result<AutoSource, ZsmilesError> {
        if let Ok(m) = MmapSource::open(path) {
            if m.is_mapped() {
                return Ok(AutoSource::Mmap(m));
            }
        }
        // mmap unavailable (platform or filesystem): cached file I/O.
        Ok(AutoSource::Cached(CachedSource::new(FileSource::open(
            path,
        )?)))
    }

    /// Force the cached-file path (benchmarks and tests that want to
    /// exercise the block cache on a platform where mmap would win).
    pub fn open_cached(path: &Path) -> Result<AutoSource, ZsmilesError> {
        Ok(AutoSource::Cached(CachedSource::new(FileSource::open(
            path,
        )?)))
    }

    /// Force the cached-file path against a specific (possibly private)
    /// pool — a serving process giving each tenant its own budget, or a
    /// test that wants deterministic residency.
    pub fn open_cached_with(
        path: &Path,
        cache: Arc<BlockCache>,
    ) -> Result<AutoSource, ZsmilesError> {
        Ok(AutoSource::Cached(CachedSource::with_cache(
            FileSource::open(path)?,
            cache,
        )))
    }

    /// `"mmap"` or `"cached-file"` — for human-readable reports.
    pub fn mode(&self) -> &'static str {
        match self {
            AutoSource::Mmap(_) => "mmap",
            AutoSource::Cached(_) => "cached-file",
        }
    }

    /// Bytes of address space mapped (0 for the cached-file mode).
    pub fn bytes_mapped(&self) -> u64 {
        match self {
            AutoSource::Mmap(m) => m.bytes_mapped(),
            AutoSource::Cached(_) => 0,
        }
    }

    /// This source's `(hits, misses)` against the shared block cache
    /// (`None` in mmap mode — there is no cache in the path).
    pub fn cache_counters(&self) -> Option<(u64, u64)> {
        match self {
            AutoSource::Mmap(_) => None,
            AutoSource::Cached(c) => Some((c.hits(), c.misses())),
        }
    }

    /// Retire this source's blocks from its pool now (see
    /// [`CachedSource::retire`]); 0 in mmap mode, where no cache holds
    /// anything on the archive's behalf.
    pub fn retire_cached_blocks(&self) -> u64 {
        match self {
            AutoSource::Mmap(_) => 0,
            AutoSource::Cached(c) => c.retire(),
        }
    }
}

impl ArchiveSource for AutoSource {
    fn len(&self) -> u64 {
        match self {
            AutoSource::Mmap(m) => m.len(),
            AutoSource::Cached(c) => c.len(),
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        match self {
            AutoSource::Mmap(m) => m.read_at(offset, buf),
            AutoSource::Cached(c) => c.read_at(offset, buf),
        }
    }
}

/// Wraps any source and counts traffic. Counters are atomic, so a shared
/// counting source observes all concurrent readers.
#[derive(Debug, Default)]
pub struct CountingSource<S> {
    inner: S,
    reads: AtomicU64,
    bytes: AtomicU64,
}

impl<S> CountingSource<S> {
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of `read_at` calls issued so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total bytes transferred so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters (e.g. after open, to meter only line fetches).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ArchiveSource> ArchiveSource for CountingSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        self.inner.read_at(offset, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_reads_exact_ranges() {
        let data: &[u8] = b"hello archive world";
        assert_eq!(ArchiveSource::len(data), 19);
        assert_eq!(data.read_range(6, 7).unwrap(), b"archive");
        assert_eq!(data.read_range(0, 0).unwrap(), b"");
        assert_eq!(data.read_range(19, 0).unwrap(), b"");
    }

    #[test]
    fn reads_past_eof_are_errors_not_short_reads() {
        let data: &[u8] = b"0123456789";
        for (offset, len) in [(8u64, 3usize), (10, 1), (11, 0), (u64::MAX, 1)] {
            let err = data.read_range(offset, len).unwrap_err();
            assert!(
                matches!(err, ZsmilesError::SourceOutOfBounds { .. }),
                "offset={offset} len={len}: {err}"
            );
        }
    }

    #[test]
    fn in_memory_source_matches_slice_behaviour() {
        let src = InMemorySource::new(b"0123456789".to_vec());
        assert_eq!(src.len(), 10);
        assert_eq!(src.read_range(3, 4).unwrap(), b"3456");
        assert!(src.read_range(9, 2).is_err());
        assert_eq!(src.bytes(), b"0123456789");
    }

    #[test]
    fn file_source_positioned_reads() {
        let path = std::env::temp_dir().join("zsmiles_test_source.bin");
        std::fs::write(&path, b"abcdefghij").unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len(), 10);
        assert_eq!(src.read_range(2, 3).unwrap(), b"cde");
        assert_eq!(src.read_range(0, 10).unwrap(), b"abcdefghij");
        assert!(matches!(
            src.read_range(5, 6).unwrap_err(),
            ZsmilesError::SourceOutOfBounds { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_source_matches_file_source_and_error_parity() {
        let path = std::env::temp_dir().join("zsmiles_test_mmap.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(4096 + 17).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = MmapSource::open(&path).unwrap();
        let file = FileSource::open(&path).unwrap();
        assert_eq!(mapped.len(), file.len());
        for (offset, len) in [(0u64, 1usize), (17, 100), (4095, 2), (4096, 17), (4113, 0)] {
            assert_eq!(
                mapped.read_range(offset, len).unwrap(),
                file.read_range(offset, len).unwrap(),
                "offset={offset} len={len}"
            );
        }
        // Past-EOF requests fail with the same error shape.
        for (offset, len) in [(4113u64, 1usize), (u64::MAX, 1), (4000, 1000)] {
            assert!(matches!(
                mapped.read_range(offset, len).unwrap_err(),
                ZsmilesError::SourceOutOfBounds { .. }
            ));
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            assert!(mapped.is_mapped());
            assert_eq!(mapped.bytes_mapped(), data.len() as u64);
            assert_eq!(mapped.as_bytes(), &data[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_source_handles_empty_files() {
        let path = std::env::temp_dir().join("zsmiles_test_mmap_empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapped = MmapSource::open(&path).unwrap();
        assert_eq!(mapped.len(), 0);
        assert!(mapped.is_empty());
        assert_eq!(mapped.read_range(0, 0).unwrap(), b"");
        assert!(mapped.read_range(0, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cached_source_serves_aligned_blocks_from_memory() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let src = CachedSource::with_block_size(
            CountingSource::new(InMemorySource::new(data.clone())),
            64,
        );
        // First read loads the covering 64-byte block (offset 64..128).
        assert_eq!(src.read_range(100, 10).unwrap(), &data[100..110]);
        assert_eq!((src.hits(), src.misses()), (0, 1));
        assert_eq!(src.inner().reads(), 1);
        // A read spanning blocks 1..=2 hits block 1, loads block 2.
        assert_eq!(src.read_range(110, 50).unwrap(), &data[110..160]);
        assert_eq!((src.hits(), src.misses()), (1, 2));
        // Fully resident rereads transfer nothing.
        assert_eq!(src.read_range(100, 10).unwrap(), &data[100..110]);
        assert_eq!(src.read_range(130, 20).unwrap(), &data[130..150]);
        assert_eq!((src.hits(), src.misses()), (3, 2));
        assert_eq!(src.inner().reads(), 2, "no further inner transfer");
        // A distant block: one new fill.
        assert_eq!(src.read_range(500, 4).unwrap(), &data[500..504]);
        assert_eq!((src.hits(), src.misses()), (3, 3));
        // Block-sized and larger requests bypass the cache.
        assert_eq!(src.read_range(0, 64).unwrap(), &data[..64]);
        assert_eq!((src.hits(), src.misses()), (3, 4));
        // The trailing block is clamped to EOF instead of erroring.
        assert_eq!(src.read_range(990, 10).unwrap(), &data[990..]);
        // Out-of-bounds requests still fail identically.
        assert!(matches!(
            src.read_range(995, 10).unwrap_err(),
            ZsmilesError::SourceOutOfBounds { .. }
        ));
    }

    #[test]
    fn cached_sources_share_one_pool_without_aliasing() {
        let cache = Arc::new(BlockCache::new(32, 1 << 16));
        let a = CachedSource::with_cache(InMemorySource::new(vec![b'a'; 256]), Arc::clone(&cache));
        let b = CachedSource::with_cache(InMemorySource::new(vec![b'b'; 256]), Arc::clone(&cache));
        assert_eq!(a.read_range(0, 8).unwrap(), vec![b'a'; 8]);
        assert_eq!(b.read_range(0, 8).unwrap(), vec![b'b'; 8]);
        assert_eq!(cache.stats().resident_blocks, 2, "same block id, two keys");
        // Dropping a source releases its residency in the shared pool.
        drop(a);
        assert_eq!(cache.stats().resident_blocks, 1);
        assert_eq!(b.read_range(0, 8).unwrap(), vec![b'b'; 8]);
        assert_eq!((b.hits(), b.misses()), (1, 1));
        let inner = b.into_inner();
        assert_eq!(cache.stats().resident_blocks, 0);
        assert_eq!(inner.bytes().len(), 256);
    }

    #[test]
    fn auto_source_opens_and_reports_mode() {
        let path = std::env::temp_dir().join("zsmiles_test_auto.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        let auto = AutoSource::open(&path).unwrap();
        assert_eq!(auto.len(), 10);
        assert_eq!(auto.read_range(3, 4).unwrap(), b"3456");
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            assert_eq!(auto.mode(), "mmap");
            assert_eq!(auto.bytes_mapped(), 10);
            assert!(auto.cache_counters().is_none());
        }
        let cached = AutoSource::open_cached(&path).unwrap();
        assert_eq!(cached.mode(), "cached-file");
        assert_eq!(cached.bytes_mapped(), 0);
        assert_eq!(cached.read_range(3, 4).unwrap(), b"3456");
        assert_eq!(cached.read_range(5, 4).unwrap(), b"5678");
        let (hits, misses) = cached.cache_counters().unwrap();
        assert_eq!((hits, misses), (1, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counting_source_meters_traffic() {
        let src = CountingSource::new(InMemorySource::new(b"0123456789".to_vec()));
        assert_eq!((src.reads(), src.bytes_read()), (0, 0));
        src.read_range(0, 4).unwrap();
        src.read_range(4, 2).unwrap();
        assert_eq!((src.reads(), src.bytes_read()), (2, 6));
        // Failed reads do not count.
        assert!(src.read_range(9, 5).is_err());
        assert_eq!((src.reads(), src.bytes_read()), (2, 6));
        src.reset();
        assert_eq!((src.reads(), src.bytes_read()), (0, 0));
    }
}
