//! Byte-range sources for out-of-core archive reading.
//!
//! The `.zsa` random-access story only pays off when a reader transfers
//! the bytes it needs and nothing else — the FSST argument, applied to
//! billion-line screening decks that do not fit in RAM. [`ArchiveSource`]
//! is that contract: a positioned `read_at` over an immutable byte
//! container, `pread`-style, with shared (`&self`) access so any number
//! of worker threads can fetch lines concurrently.
//!
//! Implementations:
//!
//! * [`FileSource`] — a `.zsa` file on disk, read with positioned I/O
//!   (`pread` on unix; a seek-guarded fallback elsewhere). No part of the
//!   payload is resident beyond the ranges a caller asks for.
//! * [`InMemorySource`] — an owned byte buffer, for archives already in
//!   memory. `&[u8]` implements the trait too, for zero-copy views.
//! * [`CountingSource`] — a transparent wrapper that counts read calls
//!   and bytes transferred; it is how the test suite *proves* `get(line)`
//!   touches only metadata plus one line's range, and how the CLI reports
//!   bytes-read in `inspect --archive` verbose mode.

use crate::error::ZsmilesError;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A random-access byte container an [`crate::reader::ArchiveReader`] can
/// serve line fetches from. Object-safe; all access is through `&self` so
/// one source can back concurrent readers.
pub trait ArchiveSource {
    /// Total size of the container in bytes.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` with the bytes at `offset..offset + buf.len()`.
    /// Reads past the end are an error ([`ZsmilesError::SourceOutOfBounds`]),
    /// never a short read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError>;

    /// Convenience: read `len` bytes at `offset` into a fresh buffer.
    fn read_range(&self, offset: u64, len: usize) -> Result<Vec<u8>, ZsmilesError> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf)?;
        Ok(buf)
    }
}

/// Bounds check shared by every implementation, so out-of-range requests
/// fail identically everywhere.
fn check_bounds(available: u64, offset: u64, len: usize) -> Result<(), ZsmilesError> {
    match offset.checked_add(len as u64) {
        Some(end) if end <= available => Ok(()),
        _ => Err(ZsmilesError::SourceOutOfBounds {
            offset,
            len,
            available,
        }),
    }
}

impl ArchiveSource for [u8] {
    fn len(&self) -> u64 {
        <[u8]>::len(self) as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(<[u8]>::len(self) as u64, offset, buf.len())?;
        let at = offset as usize;
        buf.copy_from_slice(&self[at..at + buf.len()]);
        Ok(())
    }
}

impl<S: ArchiveSource + ?Sized> ArchiveSource for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        (**self).read_at(offset, buf)
    }
}

/// An owned in-memory archive image. The all-in-RAM convenience case —
/// [`crate::Archive`] reading is built on it.
#[derive(Debug, Clone, Default)]
pub struct InMemorySource {
    bytes: Vec<u8>,
}

impl InMemorySource {
    pub fn new(bytes: Vec<u8>) -> Self {
        InMemorySource { bytes }
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl From<Vec<u8>> for InMemorySource {
    fn from(bytes: Vec<u8>) -> Self {
        InMemorySource { bytes }
    }
}

impl ArchiveSource for InMemorySource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        self.bytes.as_slice().read_at(offset, buf)
    }
}

/// A `.zsa` file on disk, read with positioned I/O. The file stays on
/// disk; only requested ranges are transferred, so archives far larger
/// than RAM serve O(1) line fetches.
#[derive(Debug)]
pub struct FileSource {
    file: File,
    len: u64,
    /// Positioned reads need a seek on platforms without `pread`; the
    /// guard keeps concurrent readers from interleaving seek/read pairs.
    #[cfg(not(unix))]
    seek_guard: std::sync::Mutex<()>,
}

impl FileSource {
    pub fn open(path: &Path) -> Result<FileSource, ZsmilesError> {
        FileSource::from_file(File::open(path)?)
    }

    pub fn from_file(file: File) -> Result<FileSource, ZsmilesError> {
        let len = file.metadata()?.len();
        Ok(FileSource {
            file,
            len,
            #[cfg(not(unix))]
            seek_guard: std::sync::Mutex::new(()),
        })
    }
}

impl ArchiveSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(self.len, offset, buf.len())?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _guard = self.seek_guard.lock().expect("seek guard poisoned");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)?;
        }
        Ok(())
    }
}

/// Default readahead block for [`CachedSource`] (256 KiB — a few thousand
/// compressed lines per transfer).
pub const DEFAULT_CACHE_BLOCK: usize = 256 << 10;

/// A single-block readahead cache over any source.
///
/// Random-access loops over a `.zsa` — a campaign fetching a run of hits,
/// the CLI printing `--count` consecutive lines — issue many small
/// `read_at`s that land near each other. `CachedSource` turns them into
/// one block-sized transfer: a miss reads `block` bytes starting at the
/// requested offset (forward readahead) and keeps them; subsequent reads
/// inside the cached block are served from memory. Requests at or above
/// the block size bypass the cache entirely, so batched iteration does
/// not thrash it.
///
/// Hit/miss counters are atomic and the block sits behind a mutex, so a
/// shared cached source stays usable from concurrent readers (they
/// serialize on the block — this is a readahead for loop-shaped access,
/// not a shared page cache; that is the ROADMAP's mmap-backed source).
#[derive(Debug)]
pub struct CachedSource<S> {
    inner: S,
    block_size: usize,
    /// `(offset, bytes)` of the resident block, if any.
    block: std::sync::Mutex<Option<(u64, Vec<u8>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: ArchiveSource> CachedSource<S> {
    pub fn new(inner: S) -> Self {
        CachedSource::with_block_size(inner, DEFAULT_CACHE_BLOCK)
    }

    pub fn with_block_size(inner: S, block_size: usize) -> Self {
        CachedSource {
            inner,
            block_size: block_size.max(1),
            block: std::sync::Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Reads served from the resident block.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Reads that went to the inner source (block fills and bypasses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ArchiveSource> ArchiveSource for CachedSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        check_bounds(self.inner.len(), offset, buf.len())?;
        if buf.len() >= self.block_size {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.inner.read_at(offset, buf);
        }
        let mut block = self.block.lock().expect("cache lock poisoned");
        if let Some((start, bytes)) = block.as_ref() {
            if offset >= *start && offset + buf.len() as u64 <= *start + bytes.len() as u64 {
                let at = (offset - *start) as usize;
                buf.copy_from_slice(&bytes[at..at + buf.len()]);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        // Miss: fill one block starting at the requested offset (clamped
        // to EOF; bounds were checked, so it always covers the request).
        let fill = (self.inner.len() - offset).min(self.block_size as u64) as usize;
        let bytes = self.inner.read_range(offset, fill)?;
        buf.copy_from_slice(&bytes[..buf.len()]);
        *block = Some((offset, bytes));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Wraps any source and counts traffic. Counters are atomic, so a shared
/// counting source observes all concurrent readers.
#[derive(Debug, Default)]
pub struct CountingSource<S> {
    inner: S,
    reads: AtomicU64,
    bytes: AtomicU64,
}

impl<S> CountingSource<S> {
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of `read_at` calls issued so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total bytes transferred so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters (e.g. after open, to meter only line fetches).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ArchiveSource> ArchiveSource for CountingSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), ZsmilesError> {
        self.inner.read_at(offset, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_reads_exact_ranges() {
        let data: &[u8] = b"hello archive world";
        assert_eq!(ArchiveSource::len(data), 19);
        assert_eq!(data.read_range(6, 7).unwrap(), b"archive");
        assert_eq!(data.read_range(0, 0).unwrap(), b"");
        assert_eq!(data.read_range(19, 0).unwrap(), b"");
    }

    #[test]
    fn reads_past_eof_are_errors_not_short_reads() {
        let data: &[u8] = b"0123456789";
        for (offset, len) in [(8u64, 3usize), (10, 1), (11, 0), (u64::MAX, 1)] {
            let err = data.read_range(offset, len).unwrap_err();
            assert!(
                matches!(err, ZsmilesError::SourceOutOfBounds { .. }),
                "offset={offset} len={len}: {err}"
            );
        }
    }

    #[test]
    fn in_memory_source_matches_slice_behaviour() {
        let src = InMemorySource::new(b"0123456789".to_vec());
        assert_eq!(src.len(), 10);
        assert_eq!(src.read_range(3, 4).unwrap(), b"3456");
        assert!(src.read_range(9, 2).is_err());
        assert_eq!(src.bytes(), b"0123456789");
    }

    #[test]
    fn file_source_positioned_reads() {
        let path = std::env::temp_dir().join("zsmiles_test_source.bin");
        std::fs::write(&path, b"abcdefghij").unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len(), 10);
        assert_eq!(src.read_range(2, 3).unwrap(), b"cde");
        assert_eq!(src.read_range(0, 10).unwrap(), b"abcdefghij");
        assert!(matches!(
            src.read_range(5, 6).unwrap_err(),
            ZsmilesError::SourceOutOfBounds { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cached_source_serves_repeat_and_readahead_reads_from_memory() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let src = CachedSource::with_block_size(
            CountingSource::new(InMemorySource::new(data.clone())),
            64,
        );
        // First read fills a 64-byte block at offset 100.
        assert_eq!(src.read_range(100, 10).unwrap(), &data[100..110]);
        assert_eq!((src.hits(), src.misses()), (0, 1));
        assert_eq!(src.inner().reads(), 1);
        // Forward readahead: the next 50 bytes are already resident.
        assert_eq!(src.read_range(110, 50).unwrap(), &data[110..160]);
        assert_eq!(src.read_range(100, 10).unwrap(), &data[100..110]);
        assert_eq!((src.hits(), src.misses()), (2, 1));
        assert_eq!(src.inner().reads(), 1, "no further inner transfer");
        // Outside the block: one new fill.
        assert_eq!(src.read_range(500, 4).unwrap(), &data[500..504]);
        assert_eq!((src.hits(), src.misses()), (2, 2));
        // Block-sized and larger requests bypass the cache.
        assert_eq!(src.read_range(0, 64).unwrap(), &data[..64]);
        assert_eq!((src.hits(), src.misses()), (2, 3));
        // Near EOF the fill clamps instead of erroring.
        assert_eq!(src.read_range(990, 10).unwrap(), &data[990..]);
        // Out-of-bounds requests still fail identically.
        assert!(matches!(
            src.read_range(995, 10).unwrap_err(),
            ZsmilesError::SourceOutOfBounds { .. }
        ));
    }

    #[test]
    fn counting_source_meters_traffic() {
        let src = CountingSource::new(InMemorySource::new(b"0123456789".to_vec()));
        assert_eq!((src.reads(), src.bytes_read()), (0, 0));
        src.read_range(0, 4).unwrap();
        src.read_range(4, 2).unwrap();
        assert_eq!((src.reads(), src.bytes_read()), (2, 6));
        // Failed reads do not count.
        assert!(src.read_range(9, 5).is_err());
        assert_eq!((src.reads(), src.bytes_read()), (2, 6));
        src.reset();
        assert_eq!((src.reads(), src.bytes_read()), (0, 0));
    }
}
