//! The `.zsa` archive container: one self-describing file for the whole
//! random-access story.
//!
//! The loose-file workflow needs three artifacts — the compressed deck
//! (`.zsmi`), its dictionary (`.dct`), and a line-offset sidecar (`.zsx`).
//! Losing any one of them costs either decodability or O(1) access. A
//! `.zsa` file carries all three sections plus integrity metadata, the way
//! FSST-style string codecs ship symbol table and payload as one unit:
//!
//! ```text
//! offset 0         "ZSAR0001"                     magic
//!        8         flavor tag (1 base, 2 wide)    which dictionary format
//!        9..16     reserved (zero)
//!        16        dict_len: u64 LE
//!        24        payload_len: u64 LE
//!        32        dictionary bytes               readable .dct text, either flavour
//!        ...       payload bytes                  newline-separated compressed lines
//!        ...       line index                     LineIndex wire format
//!        ...       index_len: u64 LE
//!        ...       crc32: u32 LE                  over every preceding byte
//!        end-8     "ZSAREND1"                     trailer magic
//! ```
//!
//! Properties preserved from the paper's design:
//!
//! * the **payload stays readable text** — `grep` through a `.zsa` still
//!   hits compressed SMILES lines; only the index and the fixed-size
//!   header/footer are binary;
//! * **O(1) `get(line)`** without sidecars: the footer locates the index,
//!   the index locates the line;
//! * the **dictionary travels with the data**, so archives are
//!   self-decoding on any machine, either code width, sniffed by tag.
//!
//! The CRC32 (reused from [`textcomp::crc32`], the same routine the
//! bzip-like baseline uses per block) covers header, dictionary, payload
//! and index, so truncation and bit rot are detected before any decode is
//! attempted.

use crate::compress::CompressStats;
use crate::decompress::DecompressStats;
use crate::engine::{AnyDictionary, DictFlavor, DynEngine};
use crate::error::ZsmilesError;
use crate::index::LineIndex;
use std::io::Write;
use std::path::Path;
use textcomp::crc32::crc32;

pub(crate) const MAGIC: &[u8; 8] = b"ZSAR0001";
pub(crate) const TRAILER: &[u8; 8] = b"ZSAREND1";
/// Fixed header: magic + flavor + reserved + dict_len + payload_len.
pub(crate) const HEADER_LEN: usize = 8 + 1 + 7 + 8 + 8;
/// Fixed footer: index_len + crc32 + trailer.
pub(crate) const FOOTER_LEN: usize = 8 + 4 + 8;

pub(crate) fn bad(reason: impl Into<String>) -> ZsmilesError {
    ZsmilesError::ArchiveFormat {
        reason: reason.into(),
    }
}

/// Byte layout of one container: where each section lives, parsed from
/// the fixed-size header and footer alone. This is the shared ground
/// between the in-memory [`Archive`] parser and the out-of-core
/// [`crate::reader::ArchiveReader`], which must locate sections without
/// touching the payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub flavor: DictFlavor,
    pub dict_start: u64,
    pub dict_len: u64,
    pub payload_start: u64,
    pub payload_len: u64,
    pub index_start: u64,
    pub index_len: u64,
    pub stored_crc: u32,
}

/// Parse and cross-check the fixed-size header (`HEADER_LEN` bytes at
/// offset 0) and footer (`FOOTER_LEN` bytes ending the file) of a
/// container `total` bytes long.
pub(crate) fn parse_layout(
    header: &[u8],
    footer: &[u8],
    total: u64,
) -> Result<Layout, ZsmilesError> {
    debug_assert_eq!(header.len(), HEADER_LEN);
    debug_assert_eq!(footer.len(), FOOTER_LEN);
    if total < (HEADER_LEN + FOOTER_LEN) as u64 {
        return Err(bad(format!(
            "file too short for a .zsa container ({total} bytes)"
        )));
    }
    if &header[..8] != MAGIC {
        return Err(bad("bad magic: not a .zsa archive"));
    }
    if &footer[12..20] != TRAILER {
        return Err(bad("bad trailer: archive truncated or not a .zsa file"));
    }
    let flavor = DictFlavor::from_tag(header[8])
        .ok_or_else(|| bad(format!("unknown dictionary flavor tag {}", header[8])))?;
    let dict_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let payload_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let index_len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(footer[8..12].try_into().unwrap());

    let dict_start = HEADER_LEN as u64;
    let payload_start = dict_start
        .checked_add(dict_len)
        .ok_or_else(|| bad("dict_len overflow"))?;
    let index_start = payload_start
        .checked_add(payload_len)
        .ok_or_else(|| bad("payload_len overflow"))?;
    let index_end = index_start
        .checked_add(index_len)
        .ok_or_else(|| bad("index_len overflow"))?;
    let index_len_at = total - FOOTER_LEN as u64;
    if index_end != index_len_at {
        return Err(bad(format!(
            "section sizes inconsistent: header says sections end at {index_end}, \
             footer starts at {index_len_at}"
        )));
    }
    Ok(Layout {
        flavor,
        dict_start,
        dict_len,
        payload_start,
        payload_len,
        index_start,
        index_len,
        stored_crc,
    })
}

/// An [`std::io::Write`] adapter that hashes and counts everything it
/// forwards — how [`Archive::write_to`] keeps the CRC streaming while
/// writing sections straight through.
struct CrcCountWriter<W: Write> {
    inner: W,
    crc: textcomp::crc32::Crc32,
    written: u64,
}

impl<W: Write> CrcCountWriter<W> {
    fn new(inner: W) -> Self {
        CrcCountWriter {
            inner,
            crc: textcomp::crc32::Crc32::new(),
            written: 0,
        }
    }
}

impl<W: Write> Write for CrcCountWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A packed, indexed, self-describing SMILES archive.
#[derive(Debug, Clone)]
pub struct Archive {
    dict: AnyDictionary,
    payload: Vec<u8>,
    index: LineIndex,
    /// Compression accounting — known when the archive was packed in this
    /// process, absent after [`Archive::open`] (the original size is not
    /// stored in the container).
    stats: Option<CompressStats>,
}

impl Archive {
    /// Compress `deck` (newline-separated SMILES) with `dict` on
    /// `threads` workers and index the result.
    pub fn pack(dict: AnyDictionary, deck: &[u8], threads: usize) -> Archive {
        let (payload, stats) = dict.compress_parallel(deck, threads);
        let index = LineIndex::build(&payload);
        Archive {
            dict,
            payload,
            index,
            stats: Some(stats),
        }
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Which dictionary flavour the archive embeds.
    pub fn flavor(&self) -> DictFlavor {
        self.dict.flavor()
    }

    /// The embedded dictionary.
    pub fn dictionary(&self) -> &AnyDictionary {
        &self.dict
    }

    /// The compressed payload (newline-separated, readable).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The line-offset index.
    pub fn index(&self) -> &LineIndex {
        &self.index
    }

    /// Compression accounting, if the archive was packed in this process.
    pub fn stats(&self) -> Option<&CompressStats> {
        self.stats.as_ref()
    }

    /// The compressed bytes of ligand `i` — the unit a random-access read
    /// transfers.
    pub fn compressed_line(&self, i: usize) -> Result<&[u8], ZsmilesError> {
        if i >= self.index.len() {
            return Err(ZsmilesError::LineOutOfRange {
                line: i,
                len: self.index.len(),
            });
        }
        Ok(self.index.line(&self.payload, i))
    }

    /// Decompress ligand `i` — the paper's random-access read: one line is
    /// touched, not the archive.
    pub fn get(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        let line = self.compressed_line(i)?;
        let mut out = Vec::with_capacity(line.len() * 3);
        self.dict.decompress_line(line, &mut out)?;
        Ok(out)
    }

    /// Decode a set of lines in the order given with one reused decoder —
    /// the shared core of every batched fetch.
    fn decode_lines<I>(&self, indices: I) -> Result<Vec<Vec<u8>>, ZsmilesError>
    where
        I: ExactSizeIterator<Item = usize>,
    {
        let mut dec = self.dict.boxed_decoder();
        let mut out = Vec::with_capacity(indices.len());
        for i in indices {
            if i >= self.index.len() {
                return Err(ZsmilesError::LineOutOfRange {
                    line: i,
                    len: self.index.len(),
                });
            }
            let line = self.index.line(&self.payload, i);
            let mut smiles = Vec::with_capacity(line.len() * 3);
            dec.decode_line(line, &mut smiles)?;
            out.push(smiles);
        }
        Ok(out)
    }

    /// Decompress a contiguous run of ligands with one reused decoder —
    /// the batch-fetch unit screening campaigns pull after scoring.
    pub fn get_range(&self, lines: std::ops::Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.decode_lines(lines)
    }

    /// Decompress an arbitrary set of ligands (hit lists are rarely
    /// contiguous) with one reused decoder, in the order given.
    pub fn get_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.decode_lines(indices.iter().copied())
    }

    /// Decompress the whole deck on `threads` workers.
    pub fn unpack(&self, threads: usize) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
        self.dict.decompress_parallel(&self.payload, threads)
    }

    // -- serialization ------------------------------------------------------

    /// Serialize the container, streaming each section straight to `w`.
    ///
    /// The CRC covers the bytes exactly as written, tracked by a hashing
    /// writer wrapper — no staging copy of the container is ever built
    /// (archives are payload-dominated, so the old assemble-then-write
    /// path doubled peak memory for nothing).
    pub fn write_to<W: Write>(&self, w: W) -> std::io::Result<()> {
        // Only the dictionary is pre-serialized: its length is a header
        // field, and dictionaries are kilobytes next to payloads.
        let mut dict_bytes = Vec::new();
        self.dict.write(&mut dict_bytes)?;

        let mut cw = CrcCountWriter::new(w);
        cw.write_all(MAGIC)?;
        cw.write_all(&[self.dict.flavor().tag()])?;
        cw.write_all(&[0u8; 7])?;
        cw.write_all(&(dict_bytes.len() as u64).to_le_bytes())?;
        cw.write_all(&(self.payload.len() as u64).to_le_bytes())?;
        cw.write_all(&dict_bytes)?;
        cw.write_all(&self.payload)?;
        let before_index = cw.written;
        self.index.write_to(&mut cw)?;
        let index_len = cw.written - before_index;
        cw.write_all(&index_len.to_le_bytes())?;
        let crc = cw.crc.finish();
        let mut w = cw.inner;
        w.write_all(&crc.to_le_bytes())?;
        w.write_all(TRAILER)?;
        w.flush()
    }

    /// Parse a container, verifying trailer, CRC and section bounds before
    /// touching any content.
    pub fn read_from(bytes: &[u8]) -> Result<Archive, ZsmilesError> {
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(bad(format!(
                "file too short for a .zsa container ({} bytes)",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(bad("bad magic: not a .zsa archive"));
        }
        if &bytes[bytes.len() - 8..] != TRAILER {
            return Err(bad("bad trailer: archive truncated or not a .zsa file"));
        }
        // With all bytes in hand, verify the checksum before interpreting
        // any section — the out-of-core reader cannot afford this pass and
        // offers it separately as `ArchiveReader::verify`.
        let crc_at = bytes.len() - 12;
        let stored_crc = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().unwrap());
        let actual_crc = crc32(&bytes[..crc_at]);
        if stored_crc != actual_crc {
            return Err(bad(format!(
                "CRC mismatch: stored {stored_crc:08x}, computed {actual_crc:08x} — archive corrupt"
            )));
        }

        let layout = parse_layout(
            &bytes[..HEADER_LEN],
            &bytes[bytes.len() - FOOTER_LEN..],
            bytes.len() as u64,
        )?;
        let dict_start = layout.dict_start as usize;
        let payload_start = layout.payload_start as usize;
        let index_start = layout.index_start as usize;
        let index_end = (layout.index_start + layout.index_len) as usize;

        let dict = AnyDictionary::read(&bytes[dict_start..payload_start])?;
        if dict.flavor() != layout.flavor {
            return Err(bad(format!(
                "flavor tag says {} but embedded dictionary is {}",
                layout.flavor.name(),
                dict.flavor().name()
            )));
        }
        let payload = bytes[payload_start..index_start].to_vec();
        let index = LineIndex::read_from(&bytes[index_start..index_end])?;
        // The stored index must describe this exact payload — a foreign or
        // buggy writer can produce a CRC-consistent container whose index
        // points past the payload, which would turn get() into a slice
        // panic. Rebuilding is one scan, cheap next to the CRC pass.
        if index != LineIndex::build(&payload) {
            return Err(bad("index does not match payload line structure"));
        }
        Ok(Archive {
            dict,
            payload,
            index,
            stats: None,
        })
    }

    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))?;
        Ok(())
    }

    pub fn open(path: &Path) -> Result<Archive, ZsmilesError> {
        let bytes = std::fs::read(path)?;
        Archive::read_from(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;
    use crate::wide::WideDictBuilder;

    fn deck_lines() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 5] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(100).collect()
    }

    fn deck_bytes() -> Vec<u8> {
        deck_lines()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect()
    }

    fn base_dict() -> AnyDictionary {
        AnyDictionary::Base(Box::new(
            DictBuilder {
                min_count: 2,
                preprocess: false,
                ..Default::default()
            }
            .train(deck_lines())
            .unwrap(),
        ))
    }

    fn wide_dict() -> AnyDictionary {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder {
                base: DictBuilder {
                    min_count: 2,
                    preprocess: false,
                    ..Default::default()
                },
                wide_size: 32,
            }
            .train(deck_lines())
            .unwrap(),
        ))
    }

    #[test]
    fn pack_serialize_open_round_trips_both_flavours() {
        let deck = deck_bytes();
        for dict in [base_dict(), wide_dict()] {
            let flavor = dict.flavor();
            let archive = Archive::pack(dict, &deck, 2);
            assert_eq!(archive.len(), 100, "{flavor:?}");
            assert!(archive.stats().unwrap().ratio() < 1.0);

            let mut blob = Vec::new();
            archive.write_to(&mut blob).unwrap();
            let reopened = Archive::read_from(&blob).unwrap();
            assert_eq!(reopened.len(), archive.len());
            assert_eq!(reopened.flavor(), flavor);
            assert_eq!(reopened.payload(), archive.payload());

            // Random access on the reopened container.
            for i in [0usize, 7, 42, 99] {
                assert_eq!(
                    reopened.get(i).unwrap(),
                    deck_lines()[i],
                    "{flavor:?} line {i}"
                );
            }
            // Full unpack restores the deck byte-for-byte (preprocess off).
            let (back, stats) = reopened.unpack(3).unwrap();
            assert_eq!(back, deck);
            assert_eq!(stats.lines, 100);
        }
    }

    #[test]
    fn payload_stays_readable_inside_the_container() {
        let archive = Archive::pack(base_dict(), &deck_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        // Every payload byte within the container remains displayable.
        for &b in archive.payload() {
            assert!(
                b == b'\n' || b == b' ' || (0x21..=0x7E).contains(&b) || b >= 0x80,
                "payload byte {b:#04x} not displayable"
            );
        }
    }

    #[test]
    fn corrupted_bytes_rejected_by_crc() {
        let archive = Archive::pack(base_dict(), &deck_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        // Flip one payload bit.
        let mid = blob.len() / 2;
        blob[mid] ^= 0x01;
        let err = Archive::read_from(&blob).unwrap_err();
        assert!(
            matches!(&err, ZsmilesError::ArchiveFormat { reason } if reason.contains("CRC")),
            "expected CRC error, got {err}"
        );
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let archive = Archive::pack(base_dict(), &deck_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        assert!(
            Archive::read_from(&blob[..blob.len() - 1]).is_err(),
            "truncated trailer"
        );
        assert!(Archive::read_from(&blob[..40]).is_err(), "truncated body");
        assert!(Archive::read_from(b"ZSAR0001").is_err(), "header only");
        assert!(Archive::read_from(b"not an archive at all, just text").is_err());
        let mut wrong_magic = blob.clone();
        wrong_magic[0] = b'X';
        assert!(Archive::read_from(&wrong_magic).is_err());
    }

    #[test]
    fn crc_consistent_but_lying_index_is_rejected() {
        // A foreign writer can produce a container whose CRC is valid but
        // whose index points past the payload; reading it must error, not
        // arm a later slice panic in get().
        let archive = Archive::pack(base_dict(), &deck_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();

        // Locate the index section and bump its `total` field (bytes
        // 16..24 of the section: magic(8) + count(8) + total(8)).
        let footer = blob.len() - FOOTER_LEN;
        let index_len = u64::from_le_bytes(blob[footer..footer + 8].try_into().unwrap()) as usize;
        let index_start = footer - index_len;
        let total_at = index_start + 16;
        let total = u64::from_le_bytes(blob[total_at..total_at + 8].try_into().unwrap());
        blob[total_at..total_at + 8].copy_from_slice(&(total + 50).to_le_bytes());
        // Recompute the CRC the way a buggy-but-honest writer would.
        let crc_at = blob.len() - 12;
        let crc = crc32(&blob[..crc_at]);
        blob[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());

        let err = Archive::read_from(&blob).unwrap_err();
        assert!(
            matches!(&err, ZsmilesError::ArchiveFormat { reason }
                if reason.contains("index does not match")),
            "got {err}"
        );
    }

    #[test]
    fn get_out_of_range_is_an_error() {
        let archive = Archive::pack(base_dict(), &deck_bytes(), 1);
        let err = archive.get(100).unwrap_err();
        assert!(matches!(
            err,
            ZsmilesError::LineOutOfRange {
                line: 100,
                len: 100
            }
        ));
    }

    #[test]
    fn empty_deck_packs_and_reopens() {
        let archive = Archive::pack(base_dict(), b"", 4);
        assert!(archive.is_empty());
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reopened = Archive::read_from(&blob).unwrap();
        assert_eq!(reopened.len(), 0);
        assert!(reopened.get(0).is_err());
    }

    #[test]
    fn file_save_open_round_trip() {
        let deck = deck_bytes();
        let archive = Archive::pack(wide_dict(), &deck, 2);
        let path = std::env::temp_dir().join("zsmiles_test_archive.zsa");
        archive.save(&path).unwrap();
        let reopened = Archive::open(&path).unwrap();
        assert_eq!(reopened.flavor(), DictFlavor::Wide);
        assert_eq!(reopened.get(13).unwrap(), deck_lines()[13]);
        std::fs::remove_file(&path).ok();
    }
}
