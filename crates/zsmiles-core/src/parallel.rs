//! Order-preserving parallel compression and decompression on a
//! persistent worker pool.
//!
//! The paper accelerates ZSMILES with CUDA; on the CPU the same
//! embarrassing parallelism is available across lines. The input buffer
//! is split at line boundaries into byte-balanced spans (balanced by
//! bytes, not lines, so a span of long EXSCALATE salts does not
//! straggle); workers drain the span queue, each running the ordinary
//! serial engine with one reused encoder and one reused output buffer,
//! and the parts are concatenated in span order — so the result is
//! byte-identical to the serial engine's.
//!
//! Two costs of the old design are gone: every call used to **spawn one
//! OS thread per span** (micro-batched callers — `unpack_to` decodes a
//! multi-GB archive as thousands of chunk-sized calls — paid the spawn
//! tax per chunk), and every span allocated its own output `Vec`. Spans
//! now go through [`WorkerPool`]: OS threads are created once per
//! process ([`WorkerPool::global`]) and jobs are dispatched over
//! channels; per-call work is channel sends plus one latch wait.
//!
//! The span machinery is written once against the object-safe
//! [`DynEngine`] facade ([`compress_parallel_dyn`] /
//! [`decompress_parallel_dyn`]); the [`Engine`]-generic and
//! dictionary-taking functions below are thin wrappers that pick the
//! engine.
//!
//! Worker minting is cheap across *calls* too: an encoder cannot outlive
//! the engine borrow it is minted from, so what persists on each pool
//! thread is the encoder's expensive state — the DP scratch buffers are
//! recycled through thread-local stashes (`sp::SpScratch`,
//! `wide::WideScratch`) when a worker's encoder drops. Repeated batch
//! submissions (the [`crate::writer::ArchiveWriter`] steady state) re-mint
//! into warmed capacity at the cost of a thread-local pop.

use crate::compress::CompressStats;
use crate::decompress::DecompressStats;
use crate::dict::Dictionary;
use crate::engine::{decode_buffer, encode_buffer, BaseEngine, DynEngine, Engine, WideEngine};
use crate::error::ZsmilesError;
use crate::sp::SpAlgorithm;
use crate::wide::WideDictionary;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// All jobs of one [`WorkerPool::scoped_run`] call: counted up as they
/// are enqueued and down as they finish (or unwind), so the caller can
/// block until its borrows are free, and holding the first panic payload
/// so it can be re-raised verbatim.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    fn count_up(&self) {
        *self.remaining.lock().expect("latch lock poisoned") += 1;
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch lock poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch lock poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch lock poisoned");
        }
    }
}

/// Decrements the latch even if the job unwinds, so a panicking job can
/// never leave `scoped_run` blocked forever.
struct CountDownGuard(Arc<Latch>);

impl Drop for CountDownGuard {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// What the persistent workers drain: one shared injector queue, so a
/// free worker always picks up the oldest pending job regardless of which
/// call enqueued it (no per-worker mailboxes to head-of-line-block on).
struct Injector {
    queue: Mutex<(std::collections::VecDeque<PoolJob>, bool)>,
    ready: Condvar,
}

impl Injector {
    fn push(&self, job: PoolJob) {
        let mut q = self.queue.lock().expect("injector lock poisoned");
        q.0.push_back(job);
        drop(q);
        self.ready.notify_one();
    }

    /// Blocks until a job is available; `None` once the pool is closed
    /// and the queue drained.
    fn pop(&self) -> Option<PoolJob> {
        let mut q = self.queue.lock().expect("injector lock poisoned");
        loop {
            if let Some(job) = q.0.pop_front() {
                return Some(job);
            }
            if q.1 {
                return None;
            }
            q = self.ready.wait(q).expect("injector lock poisoned");
        }
    }

    fn close(&self) {
        self.queue.lock().expect("injector lock poisoned").1 = true;
        self.ready.notify_all();
    }
}

/// A persistent pool of worker threads executing borrowed jobs.
///
/// Threads are created once and live for the pool's lifetime; each call
/// to [`WorkerPool::scoped_run`] pushes its jobs onto one shared injector
/// queue and blocks until every one of them has run — which is what makes
/// it sound for the jobs to borrow from the caller's stack (the pool
/// never outlives a borrow it is still using). Any free worker picks up
/// any pending job, so concurrent callers share the pool fairly instead
/// of queueing behind each other's long jobs. The process-wide
/// [`WorkerPool::global`] pool is what the `*_parallel_dyn` entry points
/// use, so steady-state parallel codec calls spawn no threads at all.
///
/// Jobs must not call back into the same pool (a job waiting on jobs
/// queued behind itself can deadlock); the codec paths never nest.
pub struct WorkerPool {
    injector: Arc<Injector>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with one worker per available CPU, created on first use and
    /// shared by the whole process.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            WorkerPool::with_threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            )
        })
    }

    /// A dedicated pool with exactly `threads` workers (≥ 1).
    pub fn with_threads(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("zsmiles-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = injector.pop() {
                            job();
                        }
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        WorkerPool { injector, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `jobs` on the pool and block until all of them have finished.
    ///
    /// Jobs may borrow from the caller's stack: the wait is what bounds
    /// their lifetime. If any job panics, the first payload is re-raised
    /// here after all jobs have drained (matching the join-and-propagate
    /// behaviour of scoped threads).
    pub fn scoped_run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new());
        // Armed before the first push: even if this frame unwinds
        // mid-dispatch (poisoned injector lock, allocation failure), the
        // guard still waits for every job already enqueued before the
        // `'env` borrows die.
        struct WaitGuard<'a>(&'a Latch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&latch);
        for job in jobs {
            // SAFETY: only the lifetime is transmuted. The job may borrow
            // data living at least `'env`; this function neither returns
            // nor unwinds until the latch has counted every enqueued job
            // down (the wait guard fires on both paths, and each job
            // counts down even if it panics), so no borrow is used after
            // it expires.
            let job: PoolJob =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, PoolJob>(job) };
            let latch_ref = Arc::clone(&latch);
            let wrapped: PoolJob = Box::new(move || {
                let _guard = CountDownGuard(Arc::clone(&latch_ref));
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
                    latch_ref.panicked.store(true, Ordering::Relaxed);
                    let mut slot = latch_ref.payload.lock().expect("payload lock poisoned");
                    slot.get_or_insert(payload);
                }
            });
            latch.count_up();
            self.injector.push(wrapped);
        }
        drop(guard); // blocks until every job has finished
        if latch.panicked.load(Ordering::Relaxed) {
            let payload = latch.payload.lock().expect("payload lock poisoned").take();
            match payload {
                Some(p) => std::panic::resume_unwind(p),
                None => panic!("a worker-pool job panicked"),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector ends the worker loops once the queue is
        // drained; join so a dropped dedicated pool leaves no threads
        // behind.
        self.injector.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Span machinery
// ---------------------------------------------------------------------------

/// Spans handed to the queue per requested worker: more spans than
/// workers lets a worker that drew short lines steal the tail of the
/// deck instead of idling.
const SPANS_PER_WORKER: usize = 4;

/// Split `input` into at most `n` spans that end on line boundaries and
/// have roughly equal byte counts.
fn byte_balanced_spans(input: &[u8], n: usize) -> Vec<&[u8]> {
    if input.is_empty() || n <= 1 {
        return vec![input];
    }
    let step = input.len().div_ceil(n);
    let mut spans = Vec::with_capacity(n);
    let mut start = 0;
    while start < input.len() {
        let mut end = (start + step).min(input.len());
        // Extend so the span ends just past a newline (or at EOF).
        while end < input.len() && input[end - 1] != b'\n' {
            end += 1;
        }
        spans.push(&input[start..end]);
        start = end;
    }
    spans
}

/// One worker's reusable state for a parallel call: a single output
/// buffer all its spans append to, and the span-order bookkeeping needed
/// to stitch the final output together.
#[derive(Default)]
struct CompressSlot {
    buf: Vec<u8>,
    /// `(span index, range of `buf`, stats)` per processed span.
    parts: Vec<(usize, Range<usize>, CompressStats)>,
}

/// Compress a newline-separated buffer on `threads` workers with any
/// [`DynEngine`]. Byte-identical to the engine's serial buffer loop.
///
/// This is the one copy of the span machinery: `threads` jobs drain a
/// byte-balanced span queue on the global [`WorkerPool`]; each job mints
/// one boxed encoder and reuses it (and one output buffer) across every
/// span it claims, so the only dynamic cost is one vtable call per line.
pub fn compress_parallel_dyn(
    engine: &dyn DynEngine,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    let threads = threads.max(1);
    let spans = if threads == 1 {
        vec![input]
    } else {
        byte_balanced_spans(input, threads * SPANS_PER_WORKER)
    };
    if spans.len() == 1 {
        let mut out = Vec::with_capacity(input.len() / 2);
        let stats = encode_buffer(&mut *engine.boxed_encoder(), input, &mut out);
        return (out, stats);
    }

    let queue = AtomicUsize::new(0);
    let workers = threads.min(spans.len());
    let mut slots: Vec<CompressSlot> = (0..workers).map(|_| CompressSlot::default()).collect();
    {
        let queue = &queue;
        let spans = &spans[..];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .map(|slot| {
                Box::new(move || {
                    let mut enc = engine.boxed_encoder();
                    loop {
                        let k = queue.fetch_add(1, Ordering::Relaxed);
                        if k >= spans.len() {
                            break;
                        }
                        let start = slot.buf.len();
                        slot.buf.reserve(spans[k].len() / 2);
                        let stats = encode_buffer(&mut *enc, spans[k], &mut slot.buf);
                        slot.parts.push((k, start..slot.buf.len(), stats));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped_run(jobs);
    }

    // Stitch the parts back together in span order.
    let mut where_is: Vec<Option<(usize, Range<usize>)>> = vec![None; spans.len()];
    let mut stats = CompressStats::default();
    for (w, slot) in slots.iter().enumerate() {
        for (k, range, s) in &slot.parts {
            where_is[*k] = Some((w, range.clone()));
            stats.merge(s);
        }
    }
    let total: usize = slots.iter().map(|s| s.buf.len()).sum();
    let mut out = Vec::with_capacity(total);
    for loc in where_is {
        let (w, range) = loc.expect("every span was processed");
        out.extend_from_slice(&slots[w].buf[range]);
    }
    (out, stats)
}

/// One worker's reusable state for a parallel decompression call.
#[derive(Default)]
struct DecompressSlot {
    buf: Vec<u8>,
    parts: Vec<(usize, Range<usize>, DecompressStats)>,
    /// First decode error this worker hit, with its span index.
    err: Option<(usize, ZsmilesError)>,
}

/// Decompress a newline-separated buffer on `threads` workers with any
/// [`DynEngine`].
pub fn decompress_parallel_dyn(
    engine: &dyn DynEngine,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    let threads = threads.max(1);
    let spans = if threads == 1 {
        vec![input]
    } else {
        byte_balanced_spans(input, threads * SPANS_PER_WORKER)
    };
    if spans.len() == 1 {
        let mut out = Vec::with_capacity(input.len() * 3);
        let stats = decode_buffer(&mut *engine.boxed_decoder(), input, &mut out)?;
        return Ok((out, stats));
    }

    let queue = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let workers = threads.min(spans.len());
    let mut slots: Vec<DecompressSlot> = (0..workers).map(|_| DecompressSlot::default()).collect();
    {
        let queue = &queue;
        let abort = &abort;
        let spans = &spans[..];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .map(|slot| {
                Box::new(move || {
                    let mut dec = engine.boxed_decoder();
                    while !abort.load(Ordering::Relaxed) {
                        let k = queue.fetch_add(1, Ordering::Relaxed);
                        if k >= spans.len() {
                            break;
                        }
                        let start = slot.buf.len();
                        slot.buf.reserve(spans[k].len() * 3);
                        match decode_buffer(&mut *dec, spans[k], &mut slot.buf) {
                            Ok(stats) => slot.parts.push((k, start..slot.buf.len(), stats)),
                            Err(e) => {
                                slot.buf.truncate(start);
                                slot.err = Some((k, e));
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped_run(jobs);
    }

    // Propagate the error of the earliest failing span — the same error a
    // serial pass would hit first. (Spans are claimed in index order, so
    // every span before a failing one was processed by someone.)
    if let Some((_, e)) = slots
        .iter_mut()
        .filter_map(|s| s.err.take())
        .min_by_key(|(k, _)| *k)
    {
        return Err(e);
    }

    let mut where_is: Vec<Option<(usize, Range<usize>)>> = vec![None; spans.len()];
    let mut stats = DecompressStats::default();
    for (w, slot) in slots.iter().enumerate() {
        for (k, range, s) in &slot.parts {
            where_is[*k] = Some((w, range.clone()));
            stats.lines += s.lines;
            stats.in_bytes += s.in_bytes;
            stats.out_bytes += s.out_bytes;
        }
    }
    let total: usize = slots.iter().map(|s| s.buf.len()).sum();
    let mut out = Vec::with_capacity(total);
    for loc in where_is {
        let (w, range) = loc.expect("every span was processed");
        out.extend_from_slice(&slots[w].buf[range]);
    }
    Ok((out, stats))
}

/// [`compress_parallel_dyn`] for a statically-typed [`Engine`].
pub fn compress_parallel_engine<E: Engine>(
    engine: &E,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_dyn(engine, input, threads)
}

/// [`decompress_parallel_dyn`] for a statically-typed [`Engine`].
pub fn decompress_parallel_engine<E: Engine>(
    engine: &E,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_dyn(engine, input, threads)
}

/// [`compress_parallel_engine`] with the one-byte codec.
pub fn compress_parallel(
    dict: &Dictionary,
    input: &[u8],
    algo: SpAlgorithm,
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_engine(&BaseEngine::new(dict).with_algorithm(algo), input, threads)
}

/// [`decompress_parallel_engine`] with the one-byte codec.
pub fn decompress_parallel(
    dict: &Dictionary,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_engine(&BaseEngine::new(dict), input, threads)
}

/// [`compress_parallel_engine`] with the wide-code extension.
pub fn compress_parallel_wide(
    dict: &WideDictionary,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_engine(&WideEngine::new(dict), input, threads)
}

/// [`decompress_parallel_engine`] with the wide-code extension.
pub fn decompress_parallel_wide(
    dict: &WideDictionary,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_engine(&WideEngine::new(dict), input, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;
    use crate::wide::{WideCompressor, WideDictBuilder};

    fn fixture() -> (Dictionary, Vec<u8>) {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(64);
        let dict = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        (dict, input)
    }

    #[test]
    fn spans_tile_the_input_on_line_boundaries() {
        let input = b"aaa\nbb\nccccc\nd\neee\n";
        for n in 1..=6 {
            let spans = byte_balanced_spans(input, n);
            let total: usize = spans.iter().map(|s| s.len()).sum();
            assert_eq!(total, input.len(), "n={n}");
            let rejoined: Vec<u8> = spans.concat();
            assert_eq!(rejoined, input, "n={n}");
            for s in &spans {
                assert!(s.ends_with(b"\n"), "span must end on newline: n={n}");
            }
        }
    }

    #[test]
    fn parallel_output_identical_to_serial() {
        let (dict, input) = fixture();
        let mut serial = Vec::new();
        let s_stats = Compressor::new(&dict).compress_buffer(&input, &mut serial);
        for threads in [1, 2, 3, 4, 7] {
            let (par, p_stats) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(p_stats, s_stats, "threads={threads}");
        }
    }

    #[test]
    fn worker_pool_runs_borrowed_jobs_to_completion() {
        let pool = WorkerPool::with_threads(3);
        assert_eq!(pool.workers(), 3);
        // Jobs borrow a stack-local slice and each fill their own cell —
        // completion of every job before scoped_run returns is exactly
        // the soundness contract.
        let mut cells = vec![0usize; 17];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = cells
                .iter_mut()
                .enumerate()
                .map(|(i, c)| Box::new(move || *c = i + 1) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.scoped_run(jobs);
        }
        assert_eq!(cells, (1..=17).collect::<Vec<_>>());
        // The pool is reusable call after call (persistent workers).
        for round in 0..5 {
            let counter = AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scoped_run(jobs);
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
        pool.scoped_run(Vec::new()); // empty job list is a no-op
    }

    #[test]
    fn worker_pool_propagates_job_panics() {
        let pool = WorkerPool::with_threads(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| {}),
                Box::new(|| panic!("boom")),
                Box::new(|| {}),
            ];
            pool.scoped_run(jobs);
        }));
        let payload = r.expect_err("panic is re-raised in the caller");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "the original payload survives"
        );
        // The pool survives and keeps serving jobs.
        let ran = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped_run(jobs);
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = WorkerPool::global();
        let p2 = WorkerPool::global();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.workers() >= 1);
    }

    #[test]
    fn interior_blank_lines_parallel_identical_to_serial() {
        let (dict, _) = fixture();
        let input = b"CCO\n\n\nCCN(CC)CC\n\nCCO\nCC(C)Cc1ccc(cc1)C(C)C(=O)O\n\n".to_vec();
        let mut serial = Vec::new();
        let s_stats = Compressor::new(&dict).compress_buffer(&input, &mut serial);
        for threads in [2, 3, 7] {
            let (par, p_stats) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(p_stats, s_stats);
        }
    }

    #[test]
    fn parallel_round_trip() {
        let (dict, input) = fixture();
        let (z, _) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, 4);
        let (back, stats) = decompress_parallel(&dict, &z, 4).unwrap();
        // Preprocessing is on (dictionary default), so compare against the
        // preprocessed input.
        let mut expect = Vec::new();
        let mut pp = smiles::Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, smiles::RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back, expect);
        assert_eq!(stats.lines, 256);
    }

    #[test]
    fn decompress_error_propagates_from_worker() {
        let (dict, _) = fixture();
        let bad = b"CCO\n\x01\x02\n".to_vec(); // 0x01 is not a valid code
        let r = decompress_parallel(&dict, &bad, 4);
        assert!(r.is_err());
    }

    #[test]
    fn empty_input() {
        let (dict, _) = fixture();
        let (z, stats) = compress_parallel(&dict, b"", SpAlgorithm::BackwardDp, 4);
        assert!(z.is_empty());
        assert_eq!(stats.lines, 0);
    }

    #[test]
    fn wide_parallel_identical_to_serial_and_round_trips() {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(64);
        let dict = WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size: 32,
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();

        let mut serial = Vec::new();
        let s_stats = WideCompressor::new(&dict).compress_buffer(&input, &mut serial);
        for threads in [1, 2, 3, 5] {
            let (par, p_stats) = compress_parallel_wide(&dict, &input, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(p_stats, s_stats, "threads={threads}");
        }

        let (back, d_stats) = decompress_parallel_wide(&dict, &serial, 3).unwrap();
        assert_eq!(d_stats.lines, 256);
        // Preprocess is on; decompressed output is the renumbered form.
        let mut expect = Vec::new();
        let mut pp = smiles::Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, smiles::RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back, expect);
    }

    #[test]
    fn wide_parallel_error_propagates() {
        let lines: Vec<&[u8]> = [b"CCO".as_slice()].repeat(8);
        let dict = WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size: 8,
        }
        .train(lines.iter().copied())
        .unwrap();
        let bad = b"CCO\n\x01\x02\n".to_vec();
        assert!(decompress_parallel_wide(&dict, &bad, 4).is_err());
    }
}
