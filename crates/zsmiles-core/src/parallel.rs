//! Order-preserving parallel compression and decompression.
//!
//! The paper accelerates ZSMILES with CUDA; on the CPU the same
//! embarrassing parallelism is available across lines. The input buffer is
//! split at line boundaries into one contiguous span per worker (balanced
//! by bytes, not lines, so a span of long EXSCALATE salts does not straggle),
//! each worker runs the ordinary serial engine with its own scratch, and the
//! outputs are concatenated in span order — so the result is byte-identical
//! to the serial engine's.
//!
//! The span machinery is written once against the object-safe
//! [`DynEngine`] facade ([`compress_parallel_dyn`] /
//! [`decompress_parallel_dyn`]); the [`Engine`]-generic and
//! dictionary-taking functions below are thin wrappers that pick the
//! engine.

use crate::compress::CompressStats;
use crate::decompress::DecompressStats;
use crate::dict::Dictionary;
use crate::engine::{decode_buffer, encode_buffer, BaseEngine, DynEngine, Engine, WideEngine};
use crate::error::ZsmilesError;
use crate::sp::SpAlgorithm;
use crate::wide::WideDictionary;

/// Split `input` into at most `n` spans that end on line boundaries and
/// have roughly equal byte counts.
fn byte_balanced_spans(input: &[u8], n: usize) -> Vec<&[u8]> {
    if input.is_empty() || n <= 1 {
        return vec![input];
    }
    let step = input.len().div_ceil(n);
    let mut spans = Vec::with_capacity(n);
    let mut start = 0;
    while start < input.len() {
        let mut end = (start + step).min(input.len());
        // Extend so the span ends just past a newline (or at EOF).
        while end < input.len() && input[end - 1] != b'\n' {
            end += 1;
        }
        spans.push(&input[start..end]);
        start = end;
    }
    spans
}

/// Compress a newline-separated buffer on `threads` workers with any
/// [`DynEngine`]. Byte-identical to the engine's serial buffer loop.
///
/// This is the one copy of the span machinery: each worker mints a boxed
/// encoder (scratch is still per-thread and reused per line), so the only
/// dynamic cost is one vtable call per line.
pub fn compress_parallel_dyn(
    engine: &dyn DynEngine,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    let spans = byte_balanced_spans(input, threads.max(1));
    if spans.len() == 1 {
        let mut out = Vec::with_capacity(input.len() / 2);
        let stats = encode_buffer(&mut *engine.boxed_encoder(), input, &mut out);
        return (out, stats);
    }
    let mut results: Vec<(Vec<u8>, CompressStats)> = Vec::with_capacity(spans.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(span.len() / 2);
                    let stats = encode_buffer(&mut *engine.boxed_encoder(), span, &mut out);
                    (out, stats)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("compression workers do not panic"));
        }
    });

    let mut out = Vec::with_capacity(results.iter().map(|(v, _)| v.len()).sum());
    let mut stats = CompressStats::default();
    for (part, s) in results {
        out.extend_from_slice(&part);
        stats.merge(&s);
    }
    (out, stats)
}

/// Decompress a newline-separated buffer on `threads` workers with any
/// [`DynEngine`].
pub fn decompress_parallel_dyn(
    engine: &dyn DynEngine,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    let spans = byte_balanced_spans(input, threads.max(1));
    if spans.len() == 1 {
        let mut out = Vec::with_capacity(input.len() * 3);
        let stats = decode_buffer(&mut *engine.boxed_decoder(), input, &mut out)?;
        return Ok((out, stats));
    }
    let mut results: Vec<Result<(Vec<u8>, DecompressStats), ZsmilesError>> =
        Vec::with_capacity(spans.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(span.len() * 3);
                    let stats = decode_buffer(&mut *engine.boxed_decoder(), span, &mut out)?;
                    Ok((out, stats))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("decompression workers do not panic"));
        }
    });

    let mut out = Vec::new();
    let mut stats = DecompressStats::default();
    for r in results {
        let (part, s) = r?;
        out.extend_from_slice(&part);
        stats.lines += s.lines;
        stats.in_bytes += s.in_bytes;
        stats.out_bytes += s.out_bytes;
    }
    Ok((out, stats))
}

/// [`compress_parallel_dyn`] for a statically-typed [`Engine`].
pub fn compress_parallel_engine<E: Engine>(
    engine: &E,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_dyn(engine, input, threads)
}

/// [`decompress_parallel_dyn`] for a statically-typed [`Engine`].
pub fn decompress_parallel_engine<E: Engine>(
    engine: &E,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_dyn(engine, input, threads)
}

/// [`compress_parallel_engine`] with the one-byte codec.
pub fn compress_parallel(
    dict: &Dictionary,
    input: &[u8],
    algo: SpAlgorithm,
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_engine(&BaseEngine::new(dict).with_algorithm(algo), input, threads)
}

/// [`decompress_parallel_engine`] with the one-byte codec.
pub fn decompress_parallel(
    dict: &Dictionary,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_engine(&BaseEngine::new(dict), input, threads)
}

/// [`compress_parallel_engine`] with the wide-code extension.
pub fn compress_parallel_wide(
    dict: &WideDictionary,
    input: &[u8],
    threads: usize,
) -> (Vec<u8>, CompressStats) {
    compress_parallel_engine(&WideEngine::new(dict), input, threads)
}

/// [`decompress_parallel_engine`] with the wide-code extension.
pub fn decompress_parallel_wide(
    dict: &WideDictionary,
    input: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
    decompress_parallel_engine(&WideEngine::new(dict), input, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;
    use crate::wide::{WideCompressor, WideDictBuilder};

    fn fixture() -> (Dictionary, Vec<u8>) {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(64);
        let dict = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        (dict, input)
    }

    #[test]
    fn spans_tile_the_input_on_line_boundaries() {
        let input = b"aaa\nbb\nccccc\nd\neee\n";
        for n in 1..=6 {
            let spans = byte_balanced_spans(input, n);
            let total: usize = spans.iter().map(|s| s.len()).sum();
            assert_eq!(total, input.len(), "n={n}");
            let rejoined: Vec<u8> = spans.concat();
            assert_eq!(rejoined, input, "n={n}");
            for s in &spans {
                assert!(s.ends_with(b"\n"), "span must end on newline: n={n}");
            }
        }
    }

    #[test]
    fn parallel_output_identical_to_serial() {
        let (dict, input) = fixture();
        let mut serial = Vec::new();
        let s_stats = Compressor::new(&dict).compress_buffer(&input, &mut serial);
        for threads in [1, 2, 3, 4, 7] {
            let (par, p_stats) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(p_stats, s_stats, "threads={threads}");
        }
    }

    #[test]
    fn parallel_round_trip() {
        let (dict, input) = fixture();
        let (z, _) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, 4);
        let (back, stats) = decompress_parallel(&dict, &z, 4).unwrap();
        // Preprocessing is on (dictionary default), so compare against the
        // preprocessed input.
        let mut expect = Vec::new();
        let mut pp = smiles::Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, smiles::RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back, expect);
        assert_eq!(stats.lines, 256);
    }

    #[test]
    fn decompress_error_propagates_from_worker() {
        let (dict, _) = fixture();
        let bad = b"CCO\n\x01\x02\n".to_vec(); // 0x01 is not a valid code
        let r = decompress_parallel(&dict, &bad, 4);
        assert!(r.is_err());
    }

    #[test]
    fn empty_input() {
        let (dict, _) = fixture();
        let (z, stats) = compress_parallel(&dict, b"", SpAlgorithm::BackwardDp, 4);
        assert!(z.is_empty());
        assert_eq!(stats.lines, 0);
    }

    #[test]
    fn wide_parallel_identical_to_serial_and_round_trips() {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(64);
        let dict = WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size: 32,
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();

        let mut serial = Vec::new();
        let s_stats = WideCompressor::new(&dict).compress_buffer(&input, &mut serial);
        for threads in [1, 2, 3, 5] {
            let (par, p_stats) = compress_parallel_wide(&dict, &input, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(p_stats, s_stats, "threads={threads}");
        }

        let (back, d_stats) = decompress_parallel_wide(&dict, &serial, 3).unwrap();
        assert_eq!(d_stats.lines, 256);
        // Preprocess is on; decompressed output is the renumbered form.
        let mut expect = Vec::new();
        let mut pp = smiles::Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, smiles::RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back, expect);
    }

    #[test]
    fn wide_parallel_error_propagates() {
        let lines: Vec<&[u8]> = [b"CCO".as_slice()].repeat(8);
        let dict = WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size: 8,
        }
        .train(lines.iter().copied())
        .unwrap();
        let bad = b"CCO\n\x01\x02\n".to_vec();
        assert!(decompress_parallel_wide(&dict, &bad, 4).is_err());
    }
}
