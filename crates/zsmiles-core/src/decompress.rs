//! Decompression (paper §IV-D2 and Fig. 3, lower path: read → decompress →
//! optional post-process).
//!
//! Per compressed byte: a space is the escape marker (emit the next byte
//! literally); anything else is a dictionary code (emit its expansion).
//! Straight table lookups — the asymmetry with the compressor's
//! shortest-path search is the design: archives are written once and read
//! many times.

use crate::codec::ESCAPE;
use crate::dict::Dictionary;
use crate::engine::LineDecoder;
use crate::error::ZsmilesError;

/// Accounting for one decompression run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecompressStats {
    pub lines: usize,
    pub in_bytes: usize,
    pub out_bytes: usize,
}

/// Packed-span sentinel for "code has no entry".
const ABSENT: u32 = u32::MAX;

/// The flat expansion table the decode hot loop reads.
///
/// All pattern bytes live back-to-back in one arena; per code a single
/// packed word `(offset << 8) | len` locates the expansion. Compared to
/// the previous `[Option<&[u8]>; 256]` this removes the per-lookup
/// `Option` discriminant test and the pointer chase into 222 separately
/// boxed patterns — every expansion is a slice of one contiguous,
/// cache-resident buffer (≤ 222 × 16 bytes, under 4 KiB). Built once per
/// [`Dictionary`] and shared by every [`Decompressor`] worker.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    /// Every pattern's bytes, concatenated in code order.
    arena: Box<[u8]>,
    /// `spans[code]` = `(arena offset << 8) | pattern length`, or
    /// [`ABSENT`]. Offsets fit 24 bits (the arena is ≤ 3 552 bytes) and
    /// lengths fit 8 ([`crate::dict::MAX_PATTERN_LEN`] is 16).
    spans: [u32; 256],
}

impl DecodeTable {
    /// Build from `(code, pattern)` entries.
    ///
    /// # Panics
    ///
    /// If a pattern is longer than 255 bytes or the arena would exceed
    /// the 24-bit offset field — impossible for dictionary-shaped input
    /// (≤ 256 patterns of ≤ [`crate::dict::MAX_PATTERN_LEN`] bytes), and
    /// a corrupt packed word must never be built silently.
    pub fn build<'a, I: IntoIterator<Item = (u8, &'a [u8])>>(entries: I) -> DecodeTable {
        let mut arena = Vec::new();
        let mut spans = [ABSENT; 256];
        for (code, pat) in entries {
            assert!(pat.len() <= 0xFF, "pattern length fits the packed word");
            assert!(arena.len() < (1 << 24), "arena offset fits the packed word");
            let packed = ((arena.len() as u32) << 8) | pat.len() as u32;
            assert!(packed != ABSENT, "packed word collides with the sentinel");
            spans[code as usize] = packed;
            arena.extend_from_slice(pat);
        }
        DecodeTable {
            arena: arena.into_boxed_slice(),
            spans,
        }
    }

    /// The pattern `code` expands to, if any.
    #[inline]
    pub fn expansion(&self, code: u8) -> Option<&[u8]> {
        let packed = self.spans[code as usize];
        if packed == ABSENT {
            None
        } else {
            let off = (packed >> 8) as usize;
            Some(&self.arena[off..off + (packed & 0xFF) as usize])
        }
    }
}

/// A reusable decompressor bound to one dictionary.
pub struct Decompressor<'d> {
    /// The dictionary's shared arena-backed expansion table.
    table: &'d DecodeTable,
    /// Re-number ring IDs to the conventional exporter style after
    /// expansion (Fig. 3's optional post-process). Off by default: the
    /// archived pre-processed form is already valid SMILES.
    postprocess: bool,
    ppbuf: Vec<u8>,
}

impl<'d> Decompressor<'d> {
    pub fn new(dict: &'d Dictionary) -> Self {
        Decompressor {
            table: dict.decode_table(),
            postprocess: false,
            ppbuf: Vec::new(),
        }
    }

    pub fn with_postprocess(mut self, on: bool) -> Self {
        self.postprocess = on;
        self
    }

    /// Decompress one line (no newline), appending to `out`.
    ///
    /// Bulk expansion in two sweeps: the first validates the whole line
    /// and sums the expanded size, the second reserves once and copies
    /// with no error paths — so the copy loop carries no bounds/realloc
    /// bookkeeping and a bad line is rejected before any output bytes are
    /// produced.
    pub fn decompress_line(
        &mut self,
        line: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<usize, ZsmilesError> {
        let start = out.len();
        if self.postprocess {
            self.ppbuf.clear();
        }
        // Sweep 1: validate + size.
        let mut total = 0usize;
        let mut i = 0;
        while i < line.len() {
            let b = line[i];
            if b == ESCAPE {
                if i + 1 >= line.len() {
                    return Err(ZsmilesError::TruncatedEscape { at: i });
                }
                total += 1;
                i += 2;
            } else {
                let packed = self.table.spans[b as usize];
                if packed == ABSENT {
                    return Err(ZsmilesError::UnknownCode { code: b, at: i });
                }
                total += (packed & 0xFF) as usize;
                i += 1;
            }
        }
        // Sweep 2: expand into `out` directly unless post-processing
        // needs a staging buffer.
        let target_is_out = !self.postprocess;
        {
            let target: &mut Vec<u8> = if target_is_out { out } else { &mut self.ppbuf };
            target.reserve(total);
            let mut i = 0;
            while i < line.len() {
                let b = line[i];
                if b == ESCAPE {
                    target.push(line[i + 1]);
                    i += 2;
                } else {
                    let packed = self.table.spans[b as usize];
                    let off = (packed >> 8) as usize;
                    target
                        .extend_from_slice(&self.table.arena[off..off + (packed & 0xFF) as usize]);
                    i += 1;
                }
            }
        }
        if self.postprocess {
            match smiles::postprocess(&self.ppbuf) {
                Ok(pp) => out.extend_from_slice(&pp),
                // A line that is not valid SMILES (it was archived raw) is
                // returned as-is.
                Err(_) => out.extend_from_slice(&self.ppbuf),
            }
        }
        Ok(out.len() - start)
    }

    /// Decompress a newline-separated buffer.
    pub fn decompress_buffer(
        &mut self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<DecompressStats, ZsmilesError> {
        crate::engine::decode_buffer(self, input, out)
    }
}

impl LineDecoder for Decompressor<'_> {
    fn decode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError> {
        self.decompress_line(line, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Prepopulation;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;
    use crate::dict::Dictionary;

    fn trained(corpus: &[&[u8]]) -> Dictionary {
        DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(corpus.iter().copied())
        .unwrap()
    }

    #[test]
    fn decode_table_packs_all_entries() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let t = d.decode_table();
        for (code, pat) in d.all_entries() {
            assert_eq!(t.expansion(code), Some(pat));
        }
        assert_eq!(t.expansion(0x80), None);
        // Standalone build from arbitrary entries, including the longest
        // allowed pattern.
        let long = [b'x'; 16];
        let t = DecodeTable::build([(0x21u8, b"CC".as_slice()), (0xF0, &long)]);
        assert_eq!(t.expansion(0x21), Some(b"CC".as_slice()));
        assert_eq!(t.expansion(0xF0), Some(&long[..]));
        assert_eq!(t.expansion(0x22), None);
    }

    #[test]
    fn round_trip_without_preprocess() {
        let corpus: Vec<&[u8]> = vec![b"COc1cc(C=O)ccc1O"; 10];
        let d = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(corpus.iter().copied())
        .unwrap();
        let mut c = Compressor::new(&d);
        let mut dc = Decompressor::new(&d);
        for line in [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"CC(C)(C)c1ccc(O)cc1",
            b"[NH4+].[Cl-]",
            b"weird but compressible !!",
        ] {
            let mut z = Vec::new();
            c.compress_line(line, &mut z);
            let mut back = Vec::new();
            dc.decompress_line(&z, &mut back).unwrap();
            assert_eq!(
                back,
                line,
                "round trip of {}",
                String::from_utf8_lossy(line)
            );
        }
    }

    #[test]
    fn round_trip_with_preprocess_yields_preprocessed_form() {
        let corpus: Vec<&[u8]> = vec![b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"; 10];
        let d = trained(&corpus);
        assert!(d.preprocessed());
        let mut c = Compressor::new(&d);
        let mut dc = Decompressor::new(&d);
        let mut z = Vec::new();
        c.compress_line(b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2", &mut z);
        let mut back = Vec::new();
        dc.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, b"C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0");
    }

    #[test]
    fn postprocess_restores_conventional_ids() {
        let corpus: Vec<&[u8]> = vec![b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"; 10];
        let d = trained(&corpus);
        let mut c = Compressor::new(&d);
        let mut dc = Decompressor::new(&d).with_postprocess(true);
        let mut z = Vec::new();
        c.compress_line(b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2", &mut z);
        let mut back = Vec::new();
        dc.decompress_line(&z, &mut back).unwrap();
        // Outermost-from-1 numbering; both rings disjoint → both get 1.
        assert_eq!(back, b"C1=CC=C(C=C1)C(=O)CC(=O)C1=CC=CC=C1");
    }

    #[test]
    fn buffer_round_trip_preserves_line_order() {
        let corpus: Vec<&[u8]> = [
            b"CCOC(=O)c1ccccc1".as_slice(),
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(5);
        let d = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(corpus.iter().copied())
        .unwrap();
        let input: Vec<u8> = corpus
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut z = Vec::new();
        let cs = Compressor::new(&d).compress_buffer(&input, &mut z);
        let mut back = Vec::new();
        let ds = Decompressor::new(&d)
            .decompress_buffer(&z, &mut back)
            .unwrap();
        assert_eq!(back, input);
        assert_eq!(cs.lines, ds.lines);
        assert_eq!(cs.in_bytes, ds.out_bytes);
        assert_eq!(cs.out_bytes, ds.in_bytes);
    }

    #[test]
    fn unknown_code_is_an_error() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let mut dc = Decompressor::new(&d);
        let mut out = Vec::new();
        // 0x80 has no entry in an identity-only alphabet dictionary.
        let r = dc.decompress_line(&[b'C', 0x80], &mut out);
        assert!(matches!(
            r,
            Err(ZsmilesError::UnknownCode { code: 0x80, at: 1 })
        ));
    }

    #[test]
    fn truncated_escape_is_an_error() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let mut dc = Decompressor::new(&d);
        let mut out = Vec::new();
        let r = dc.decompress_line(b"CC ", &mut out);
        assert!(matches!(r, Err(ZsmilesError::TruncatedEscape { at: 2 })));
    }

    #[test]
    fn escaped_bytes_pass_through() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let mut dc = Decompressor::new(&d);
        let mut out = Vec::new();
        dc.decompress_line(b" ! C \x07", &mut out).unwrap();
        assert_eq!(out, b"!C\x07");
    }

    #[test]
    fn random_access_per_line() {
        // Decompressing line k alone must work without touching other
        // lines — the property Bzip2 lacks.
        let corpus: Vec<&[u8]> = [b"CCOC(=O)c1ccccc1".as_slice(), b"CCN(CC)CC"].repeat(10);
        let d = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(corpus.iter().copied())
        .unwrap();
        let mut z = Vec::new();
        let mut c = Compressor::new(&d);
        for line in &corpus {
            c.compress_line(line, &mut z);
            z.push(b'\n');
        }
        let lines: Vec<&[u8]> = z.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        let mut dc = Decompressor::new(&d);
        let mut out = Vec::new();
        dc.decompress_line(lines[7], &mut out).unwrap();
        assert_eq!(out, corpus[7]);
    }
}
