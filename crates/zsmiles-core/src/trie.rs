//! Flat-arena byte trie for multi-pattern matching (paper §IV-D1: "the
//! dictionary D is represented by a trie to do pattern matching").
//!
//! Layout choices follow the access pattern: the root level is consulted
//! once per input position, so it gets a direct 256-entry table; deeper
//! nodes are rare (patterns are ≤16 bytes and there are ≤222 of them), so
//! they store sorted child lists searched linearly — the lists are tiny and
//! a linear scan beats binary search at these sizes.

/// Node index sentinel.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Sorted (byte, child) pairs.
    children: Vec<(u8, u32)>,
    /// Code emitted if a pattern ends here.
    code: Option<u8>,
}

/// Multi-pattern matcher over byte strings.
#[derive(Debug, Clone)]
pub struct Trie {
    /// Root children: direct byte-indexed table.
    root: [u32; 256],
    /// Codes for single-byte patterns, kept out of `nodes` so the hot
    /// single-char path is one load.
    root_code: [Option<u8>; 256],
    nodes: Vec<Node>,
    max_depth: usize,
    pattern_count: usize,
}

impl Default for Trie {
    fn default() -> Self {
        Trie::new()
    }
}

impl Trie {
    pub fn new() -> Self {
        Trie {
            root: [NONE; 256],
            root_code: [None; 256],
            nodes: Vec::new(),
            max_depth: 0,
            pattern_count: 0,
        }
    }

    /// Number of patterns inserted.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Insert `pattern` with its output `code`. Re-inserting a pattern
    /// replaces its code.
    pub fn insert(&mut self, pattern: &[u8], code: u8) {
        assert!(!pattern.is_empty(), "empty patterns are not meaningful");
        self.max_depth = self.max_depth.max(pattern.len());
        if pattern.len() == 1 {
            if self.root_code[pattern[0] as usize].is_none() {
                self.pattern_count += 1;
            }
            self.root_code[pattern[0] as usize] = Some(code);
            return;
        }
        let b0 = pattern[0] as usize;
        let mut cur = if self.root[b0] == NONE {
            let idx = self.alloc_node();
            self.root[b0] = idx;
            idx
        } else {
            self.root[b0]
        };
        for &b in &pattern[1..] {
            cur = match self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
            {
                Some(&(_, child)) => child,
                None => {
                    let idx = self.alloc_node();
                    let node = &mut self.nodes[cur as usize];
                    let pos = node.children.partition_point(|(cb, _)| *cb < b);
                    node.children.insert(pos, (b, idx));
                    idx
                }
            };
        }
        let node = &mut self.nodes[cur as usize];
        if node.code.is_none() {
            self.pattern_count += 1;
        }
        node.code = Some(code);
    }

    fn alloc_node(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            children: Vec::new(),
            code: None,
        });
        idx
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`.
    #[inline]
    pub fn matches_at<F: FnMut(u8, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let first = input[start] as usize;
        if let Some(code) = self.root_code[first] {
            visit(code, 1);
        }
        let mut cur = self.root[first];
        let mut depth = 1;
        while cur != NONE && start + depth < input.len() {
            let b = input[start + depth];
            let node = &self.nodes[cur as usize];
            match node.children.iter().find(|(cb, _)| *cb == b) {
                Some(&(_, child)) => {
                    depth += 1;
                    let child_node = &self.nodes[child as usize];
                    if let Some(code) = child_node.code {
                        visit(code, depth);
                    }
                    cur = child;
                }
                None => break,
            }
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(u8, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<u8> {
        if pattern.is_empty() {
            return None;
        }
        if pattern.len() == 1 {
            return self.root_code[pattern[0] as usize];
        }
        let mut cur = self.root[pattern[0] as usize];
        for &b in &pattern[1..] {
            if cur == NONE {
                return None;
            }
            cur = self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
                .map(|&(_, c)| c)
                .unwrap_or(NONE);
        }
        if cur == NONE {
            None
        } else {
            self.nodes[cur as usize].code
        }
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_matches(t: &Trie, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        t.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t = Trie::new();
        assert!(t.is_empty());
        assert_eq!(collect_matches(&t, b"CCO", 0), vec![]);
        assert_eq!(t.longest_match_at(b"CCO", 0), None);
    }

    #[test]
    fn single_byte_patterns() {
        let mut t = Trie::new();
        t.insert(b"C", 1);
        t.insert(b"O", 2);
        assert_eq!(t.len(), 2);
        assert_eq!(collect_matches(&t, b"CO", 0), vec![(1, 1)]);
        assert_eq!(collect_matches(&t, b"CO", 1), vec![(2, 1)]);
        assert_eq!(t.get(b"C"), Some(1));
        assert_eq!(t.get(b"N"), None);
    }

    #[test]
    fn nested_prefix_patterns_all_reported() {
        let mut t = Trie::new();
        t.insert(b"C", 10);
        t.insert(b"CC", 11);
        t.insert(b"CCO", 12);
        let m = collect_matches(&t, b"CCOC", 0);
        assert_eq!(m, vec![(10, 1), (11, 2), (12, 3)]);
        assert_eq!(t.longest_match_at(b"CCOC", 0), Some((12, 3)));
        // At position 1 only "C" and "CC"... "CO" is not a pattern.
        assert_eq!(collect_matches(&t, b"CCOC", 1), vec![(10, 1)]);
    }

    #[test]
    fn match_stops_at_input_end() {
        let mut t = Trie::new();
        t.insert(b"CCCC", 9);
        t.insert(b"CC", 8);
        let m = collect_matches(&t, b"CCC", 0);
        assert_eq!(m, vec![(8, 2)], "CCCC cannot match a 3-byte input");
    }

    #[test]
    fn overlapping_patterns_at_different_starts() {
        let mut t = Trie::new();
        t.insert(b"c1cc", 1);
        t.insert(b"ccc", 2);
        t.insert(b"cc", 3);
        let input = b"c1ccccc1";
        assert_eq!(collect_matches(&t, input, 0), vec![(1, 4)]);
        assert_eq!(collect_matches(&t, input, 2), vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn reinsert_replaces_code_without_double_count() {
        let mut t = Trie::new();
        t.insert(b"CC", 1);
        t.insert(b"CC", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"CC"), Some(2));
        t.insert(b"C", 3);
        t.insert(b"C", 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"C"), Some(4));
    }

    #[test]
    fn max_depth_tracks_longest() {
        let mut t = Trie::new();
        assert_eq!(t.max_depth(), 0);
        t.insert(b"CC", 0);
        assert_eq!(t.max_depth(), 2);
        t.insert(b"C(=O)CC", 1);
        assert_eq!(t.max_depth(), 7);
        t.insert(b"N", 2);
        assert_eq!(t.max_depth(), 7);
    }

    #[test]
    fn high_bytes_work_as_pattern_content() {
        // Patterns may contain any byte (dictionaries are trained on raw
        // lines; escape handling is the compressor's job, not the trie's).
        let mut t = Trie::new();
        t.insert(&[0x80, 0xFF], 7);
        assert_eq!(t.get(&[0x80, 0xFF]), Some(7));
        assert_eq!(collect_matches(&t, &[0x80, 0xFF, 0x80], 0), vec![(7, 2)]);
    }

    #[test]
    fn get_partial_path_is_none() {
        let mut t = Trie::new();
        t.insert(b"CCO", 5);
        assert_eq!(t.get(b"CC"), None, "interior node has no code");
        assert_eq!(t.get(b"CCOC"), None);
        assert_eq!(t.get(b""), None);
    }

    #[test]
    fn dense_dictionary_scales() {
        // 222 patterns of length up to 16 — the realistic maximum.
        let mut t = Trie::new();
        for i in 0..222usize {
            let len = 2 + (i % 15);
            let pat: Vec<u8> = (0..len).map(|j| b'A' + ((i + j) % 26) as u8).collect();
            t.insert(&pat, (i % 200) as u8);
        }
        assert!(t.len() <= 222);
        assert!(t.max_depth() <= 16);
        // Memory stays small (well under a megabyte).
        assert!(t.memory_bytes() < 1 << 20, "{} bytes", t.memory_bytes());
    }
}
