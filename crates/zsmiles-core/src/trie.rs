//! Multi-pattern matching for the encoder (paper §IV-D1: "the dictionary D
//! is represented by a trie to do pattern matching").
//!
//! Three structures share the job:
//!
//! * [`Trie`] — the pointer-linked build-time structure. Cheap to mutate
//!   (dictionary training inserts and re-inserts patterns), compact, but
//!   every step of a match walk scans a sorted child list.
//! * [`DenseAutomaton`] — the flat run-time structure compiled from a
//!   finished [`Trie`]. One `state × 256` transition table plus a packed
//!   per-state `(code, depth)` accept word turn each step of
//!   [`DenseAutomaton::matches_at`] into two array loads and a compare —
//!   no child-list scan, no `Option` unwrapping.
//! * [`CompactAutomaton`] — the cache-conscious sibling the encode hot
//!   path walks by default. Same states, same BFS numbering, same match
//!   stream as the dense layout, but each state row is `classes` cells
//!   wide instead of 256 and carries its accept word inline, so one DP
//!   step touches one cache line instead of two far-apart ones.
//!
//! # Byte-class compression
//!
//! SMILES decks use a few dozen distinct bytes (the element symbols, ring
//! digits, bond and branch punctuation), so a dense 256-wide transition
//! row is ~90% dead columns. The compact layout harvests the dictionary's
//! actual alphabet at compile time — every byte that appears in any
//! pattern — and maps input bytes through a 256-entry `byte → offset`
//! table. Mapped bytes get classes `1, 2, …` in ascending byte order;
//! every unmapped byte shares class 0, whose column is all-dead (no
//! pattern can advance on a byte no pattern contains). A state row is
//! `class_count` cells padded to a power-of-two stride, all rows in one
//! allocation.
//!
//! # Per-edge accepts and pre-shifted next cells
//!
//! A trie automaton has exactly one incoming edge per state, so a state's
//! accept word has a unique home on *the edge that enters it*. The table
//! is one allocation split in two same-shape segments — next cells first,
//! the matching per-edge accept words behind them — indexed by the same
//! `(state << shift) + class` edge index. The accept load is therefore
//! indexed by the edge the walk just resolved and sits off the
//! loop-carried chain; only the next-state load chains. Next cells store
//! the target's row base pre-shifted (`child << shift`) whenever it fits
//! the cell word, so the chain is load–add–load — shorter than the dense
//! layout's shift–or–load — while a row costs `stride` cells instead of
//! 256. Narrow cells are `u16` (chosen for every dictionary below 65 536
//! states) with a compile-time fallback to `u32` (see
//! [`CodePayload::NarrowCell`] / [`CodePayload::WideCell`]).
//! States are numbered breadth-first from the trie, so the shallow states
//! every match walk touches first are packed together at the front of the
//! table.
//!
//! All three structures are generic over the [`CodePayload`] a match
//! reports: the one-byte codec stores `u8` code bytes, the wide extension
//! stores its dense `u16` code ids ([`crate::wide`]) — same structures,
//! same walk, one implementation. All implement [`Matcher`], the interface
//! the shortest-path encoders ([`crate::sp`], the wide DP) walk, and are
//! pinned byte-identical by property tests.

/// Node index sentinel.
const NONE: u32 = u32::MAX;

/// A payload a pattern match reports, packable into a dense per-state
/// accept word together with the match depth. The base codec's payload is
/// the code byte itself (`u8`); the wide extension's is its dense 16-bit
/// code id.
pub trait CodePayload: Copy + Eq + Ord + std::fmt::Debug {
    /// Pack `(self, depth)` into one accept word. `depth` is a pattern
    /// length, bounded by [`crate::dict::MAX_PATTERN_LEN`], so both
    /// implementations fit a `u32` with room to spare (and stay clear of
    /// the `u32::MAX` no-accept sentinel).
    ///
    /// The depth is stored *complemented* (`0xFF - depth` above the
    /// payload bits), which makes the raw word the low bits of a
    /// shortest-path relax key: ordering words ascending prefers longer
    /// patterns, then smaller payloads — exactly the DP tie-break — so
    /// the fused encode loops OR the word into their cost key without
    /// unpacking (see [`Matcher::matches_at_raw`]).
    fn pack_accept(self, depth: u32) -> u32;
    /// Inverse of [`CodePayload::pack_accept`]: `(payload, depth)`.
    fn unpack_accept(word: u32) -> (Self, usize);
    /// Width of the packed accept word (complemented depth byte above the
    /// payload bits). The all-ones value of this width is the compact
    /// layout's no-accept sentinel — unreachable for real accept words
    /// because depth ≥ 1 keeps the complemented byte below `0xFF`.
    const ACCEPT_BITS: u32;
    /// Cell word of the narrow compact layout (16-bit state ids): the
    /// accept word and state id merged must fit.
    type NarrowCell: CellWord;
    /// Cell word of the wide fallback layout (32-bit state ids).
    type WideCell: CellWord;
}

impl CodePayload for u8 {
    const ACCEPT_BITS: u32 = 16;
    type NarrowCell = u16;
    type WideCell = u32;

    #[inline]
    fn pack_accept(self, depth: u32) -> u32 {
        ((0xFF - depth) << 8) | self as u32
    }
    #[inline]
    fn unpack_accept(word: u32) -> (Self, usize) {
        ((word & 0xFF) as u8, 0xFF - ((word >> 8) & 0xFF) as usize)
    }
}

impl CodePayload for u16 {
    const ACCEPT_BITS: u32 = 24;
    type NarrowCell = u32;
    type WideCell = u32;

    #[inline]
    fn pack_accept(self, depth: u32) -> u32 {
        ((0xFF - depth) << 16) | self as u32
    }
    #[inline]
    fn unpack_accept(word: u32) -> (Self, usize) {
        (
            (word & 0xFFFF) as u16,
            0xFF - ((word >> 16) & 0xFF) as usize,
        )
    }
}

/// The shape of one DP relax key: how the fused walk combines the suffix
/// DP cell a match lands on with the match's raw accept word into a single
/// comparable `u64` (smaller = better, see `crate::sp`). The base codec
/// and the wide extension each supply one implementation; keeping the key
/// construction here-generic lets [`Matcher::best_relax`] fuse the table
/// walk and the relax without the matcher knowing DP cost semantics.
pub trait RelaxKey {
    /// Build the candidate key for a match whose suffix DP cell is `cell`
    /// and whose raw accept word is `acc`.
    fn key(cell: u64, acc: u32) -> u64;
}

/// The interface the shortest-path encoders walk: report every dictionary
/// pattern matching at `input[start..]`, shortest first. Implemented by
/// the build-time [`Trie`] and the flat [`DenseAutomaton`] at either
/// payload width; generic (not dyn) so the per-position call inlines into
/// the DP loop.
pub trait Matcher {
    /// What a match reports: the base codec's `u8` code byte, or the wide
    /// extension's dense `u16` code id.
    type Code: CodePayload;

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`.
    fn matches_at<F: FnMut(Self::Code, usize)>(&self, input: &[u8], start: usize, visit: F);

    /// Visit every match as `visit(raw_accept_word, length)` — the word is
    /// [`CodePayload::pack_accept`]'s complemented-depth form, i.e. the
    /// exact low bits of a DP relax key (see [`crate::sp`]), so the fused
    /// encode loops fold the harvest into the relax with no unpacking.
    /// Table-backed matchers override this to hand over the stored word
    /// directly; the default repacks.
    #[inline]
    fn matches_at_raw<F: FnMut(u32, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        self.matches_at(input, start, |code, len| {
            visit(code.pack_accept(len as u32), len)
        });
    }

    /// Fold the whole match harvest at `start` into the best (minimum)
    /// relax key: for each match of length `len`, the candidate is
    /// `K::key(cells[start + len], acc)`; `init` seeds the fold (the
    /// caller's escape edge). `cells` is the DP array, one entry longer
    /// than `input`. This is the innermost operation of the shortest-path
    /// encoders; the compact layout overrides it with a branch-predictable
    /// fixed-trip walk.
    #[inline]
    fn best_relax<K: RelaxKey>(&self, input: &[u8], start: usize, cells: &[u64], init: u64) -> u64 {
        let mut best = init;
        let last = cells.len() - 1;
        self.matches_at_raw(input, start, |acc, len| {
            // The clamp never binds for an in-contract matcher (a match
            // cannot outrun the line); it keeps the indexing panic-free.
            let key = K::key(cells[(start + len).min(last)], acc);
            if key < best {
                best = key;
            }
        });
        best
    }
}

#[derive(Debug, Clone)]
struct Node<C> {
    /// Sorted (byte, child) pairs.
    children: Vec<(u8, u32)>,
    /// Code emitted if a pattern ends here.
    code: Option<C>,
}

/// Multi-pattern matcher over byte strings, generic over the payload a
/// match reports (`u8` base code bytes by default).
#[derive(Debug, Clone)]
pub struct Trie<C: CodePayload = u8> {
    /// Root children: direct byte-indexed table.
    root: [u32; 256],
    /// Codes for single-byte patterns, kept out of `nodes` so the hot
    /// single-char path is one load.
    root_code: [Option<C>; 256],
    nodes: Vec<Node<C>>,
    max_depth: usize,
    pattern_count: usize,
}

impl<C: CodePayload> Default for Trie<C> {
    fn default() -> Self {
        Trie::new()
    }
}

impl<C: CodePayload> Trie<C> {
    pub fn new() -> Self {
        Trie {
            root: [NONE; 256],
            root_code: [None; 256],
            nodes: Vec::new(),
            max_depth: 0,
            pattern_count: 0,
        }
    }

    /// Number of patterns inserted.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Insert `pattern` with its output `code`. Re-inserting a pattern
    /// replaces its code.
    pub fn insert(&mut self, pattern: &[u8], code: C) {
        assert!(!pattern.is_empty(), "empty patterns are not meaningful");
        self.max_depth = self.max_depth.max(pattern.len());
        if pattern.len() == 1 {
            if self.root_code[pattern[0] as usize].is_none() {
                self.pattern_count += 1;
            }
            self.root_code[pattern[0] as usize] = Some(code);
            return;
        }
        let b0 = pattern[0] as usize;
        let mut cur = if self.root[b0] == NONE {
            let idx = self.alloc_node();
            self.root[b0] = idx;
            idx
        } else {
            self.root[b0]
        };
        for &b in &pattern[1..] {
            cur = match self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
            {
                Some(&(_, child)) => child,
                None => {
                    let idx = self.alloc_node();
                    let node = &mut self.nodes[cur as usize];
                    let pos = node.children.partition_point(|(cb, _)| *cb < b);
                    node.children.insert(pos, (b, idx));
                    idx
                }
            };
        }
        let node = &mut self.nodes[cur as usize];
        if node.code.is_none() {
            self.pattern_count += 1;
        }
        node.code = Some(code);
    }

    fn alloc_node(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            children: Vec::new(),
            code: None,
        });
        idx
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`.
    #[inline]
    pub fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let first = input[start] as usize;
        if let Some(code) = self.root_code[first] {
            visit(code, 1);
        }
        let mut cur = self.root[first];
        let mut depth = 1;
        while cur != NONE && start + depth < input.len() {
            let b = input[start + depth];
            let node = &self.nodes[cur as usize];
            match node.children.iter().find(|(cb, _)| *cb == b) {
                Some(&(_, child)) => {
                    depth += 1;
                    let child_node = &self.nodes[child as usize];
                    if let Some(code) = child_node.code {
                        visit(code, depth);
                    }
                    cur = child;
                }
                None => break,
            }
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(C, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<C> {
        if pattern.is_empty() {
            return None;
        }
        if pattern.len() == 1 {
            return self.root_code[pattern[0] as usize];
        }
        let mut cur = self.root[pattern[0] as usize];
        for &b in &pattern[1..] {
            if cur == NONE {
                return None;
            }
            cur = self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
                .map(|&(_, c)| c)
                .unwrap_or(NONE);
        }
        if cur == NONE {
            None
        } else {
            self.nodes[cur as usize].code
        }
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<Node<C>>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>()
    }
}

impl<C: CodePayload> Matcher for Trie<C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        Trie::matches_at(self, input, start, visit)
    }
}

// ---------------------------------------------------------------------------
// DenseAutomaton
// ---------------------------------------------------------------------------

/// Dead state: every transition out of it loops back to it, so a walk
/// tests one sentinel instead of an `Option`.
const DEAD: u32 = 0;
/// Start state of every match walk.
const ROOT: u32 = 1;
/// Accept-word sentinel for "no pattern ends in this state".
const NO_ACCEPT: u32 = u32::MAX;

/// A flat table-driven matcher compiled from a finished [`Trie`].
///
/// # Layout
///
/// * `next` — a dense `state × 256 → state` transition table. One load per
///   consumed input byte; a missing edge lands in the dead state
///   (state 0), whose row points back at itself.
/// * `accept` — one packed word per state: the [`CodePayload`] accept
///   record `(code, depth)` if a pattern ends in that state, a sentinel
///   otherwise. Because every state sits at a fixed distance from the
///   root, a single word per state carries the whole record.
///
/// # Trade-off vs the node trie
///
/// The trie stores each node's children as a sorted `Vec<(u8, u32)>` —
/// compact (a few KiB) but every step of a match is a linear child scan
/// plus a pointer chase into a separately allocated list. The automaton
/// spends 1 KiB of transition row per state (~1–3 MiB for a full
/// 222-pattern base dictionary, up to the low tens of MiB for a maximal
/// wide one) to make each step two indexed loads into two flat arrays
/// with no data-dependent branches beyond the dead-state exit. The
/// shortest-path DPs consult the matcher once per input position per
/// line, so this is the single hottest loop in either encoder; the memory
/// is paid once per loaded dictionary. Dictionaries are built with the
/// mutable [`Trie`] and compiled once via [`DenseAutomaton::compile`];
/// the trie remains available for introspection and as the reference
/// implementation the property tests pin the automaton against.
#[derive(Debug, Clone)]
pub struct DenseAutomaton<C: CodePayload = u8> {
    /// `next[state << 8 | byte]` = successor state (row-major by state).
    next: Box<[u32]>,
    /// `accept[state]` = [`CodePayload::pack_accept`], or [`NO_ACCEPT`].
    accept: Box<[u32]>,
    max_depth: usize,
    pattern_count: usize,
    _payload: std::marker::PhantomData<C>,
}

impl<C: CodePayload> DenseAutomaton<C> {
    /// Compile `trie` into flat tables. The trie is not consumed; it stays
    /// the build-time structure.
    pub fn compile(trie: &Trie<C>) -> DenseAutomaton<C> {
        // States 0 (dead) and 1 (root). The dead row is all zeros, which
        // is exactly "every transition loops to dead".
        let mut next = vec![DEAD; 2 * 256];
        let mut accept = vec![NO_ACCEPT; 2];
        let alloc = |next: &mut Vec<u32>, accept: &mut Vec<u32>| -> u32 {
            let s = accept.len() as u32;
            next.extend(std::iter::repeat_n(DEAD, 256));
            accept.push(NO_ACCEPT);
            s
        };
        // Breadth-first over the trie so states are allocated level by
        // level: (state, trie node, depth of that node's path).
        let mut queue: std::collections::VecDeque<(u32, u32, u32)> =
            std::collections::VecDeque::new();
        for b in 0..256usize {
            let node = trie.root[b];
            if node == NONE && trie.root_code[b].is_none() {
                continue;
            }
            let s = alloc(&mut next, &mut accept);
            next[(ROOT as usize) << 8 | b] = s;
            if let Some(code) = trie.root_code[b] {
                accept[s as usize] = code.pack_accept(1);
            }
            if node != NONE {
                queue.push_back((s, node, 1));
            }
        }
        while let Some((s, node, depth)) = queue.pop_front() {
            for &(b, child) in &trie.nodes[node as usize].children {
                let cs = alloc(&mut next, &mut accept);
                next[(s as usize) << 8 | b as usize] = cs;
                if let Some(code) = trie.nodes[child as usize].code {
                    accept[cs as usize] = code.pack_accept(depth + 1);
                }
                queue.push_back((cs, child, depth + 1));
            }
        }
        DenseAutomaton {
            next: next.into_boxed_slice(),
            accept: accept.into_boxed_slice(),
            max_depth: trie.max_depth(),
            pattern_count: trie.len(),
            _payload: std::marker::PhantomData,
        }
    }

    /// Number of patterns the source trie held.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of automaton states, dead and root included.
    pub fn states(&self) -> usize {
        self.accept.len()
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`. The hot-path walk: two flat loads per
    /// consumed byte, exiting on the dead state (reached after at most
    /// `max_depth + 1` steps).
    #[inline]
    pub fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let mut state = ROOT as usize;
        for &b in &input[start..] {
            state = self.next[state << 8 | b as usize] as usize;
            if state == DEAD as usize {
                return;
            }
            let acc = self.accept[state];
            if acc != NO_ACCEPT {
                let (code, depth) = C::unpack_accept(acc);
                visit(code, depth);
            }
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(C, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<C> {
        if pattern.is_empty() {
            return None;
        }
        let mut state = ROOT as usize;
        for &b in pattern {
            state = self.next[state << 8 | b as usize] as usize;
            if state == DEAD as usize {
                return None;
            }
        }
        let acc = self.accept[state];
        // Only a full-length accept counts (depth equals the path length
        // by construction, so presence is sufficient).
        if acc == NO_ACCEPT {
            None
        } else {
            Some(C::unpack_accept(acc).0)
        }
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.next.len() * std::mem::size_of::<u32>()
            + self.accept.len() * std::mem::size_of::<u32>()
    }
}

impl<C: CodePayload> Matcher for DenseAutomaton<C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        DenseAutomaton::matches_at(self, input, start, visit)
    }

    #[inline]
    fn matches_at_raw<F: FnMut(u32, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let mut state = ROOT as usize;
        let mut len = 0;
        for &b in &input[start..] {
            state = self.next[state << 8 | b as usize] as usize;
            if state == DEAD as usize {
                return;
            }
            len += 1;
            let acc = self.accept[state];
            if acc != NO_ACCEPT {
                visit(acc, len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CompactAutomaton
// ---------------------------------------------------------------------------

/// The machine word one compact cell occupies: `u16` for the narrow
/// layout (16-bit state ids — every dictionary below 65 536 states with a
/// one-byte payload), `u32` otherwise. Chosen per payload via
/// [`CodePayload::NarrowCell`] / [`CodePayload::WideCell`].
pub trait CellWord: Copy + Eq + std::fmt::Debug + 'static {
    const ZERO: Self;
    /// Largest value the word holds — the pre-shift feasibility bound.
    const MAX_VALUE: u64;
    fn pack(word: u64) -> Self;
    fn get(self) -> u64;
}

impl CellWord for u16 {
    const ZERO: u16 = 0;
    const MAX_VALUE: u64 = u16::MAX as u64;
    #[inline]
    fn pack(word: u64) -> u16 {
        debug_assert!(word <= u16::MAX as u64);
        word as u16
    }
    #[inline]
    fn get(self) -> u64 {
        self as u64
    }
}

impl CellWord for u32 {
    const ZERO: u32 = 0;
    const MAX_VALUE: u64 = u32::MAX as u64;
    #[inline]
    fn pack(word: u64) -> u32 {
        debug_assert!(word <= u32::MAX as u64);
        word as u32
    }
    #[inline]
    fn get(self) -> u64 {
        self as u64
    }
}

/// One compact state table: transitions and accept words interleaved in a
/// single allocation of [`CellWord`]s — the next-state segment in
/// `[0, half)`, the per-edge accept segment in `[half, 2·half)`, both
/// indexed by the same `(state << shift) + class` edge index. A trie
/// automaton has exactly one incoming edge per state, so the edge's
/// accept slot *is* the target state's accept word — no separate
/// per-state accept row, and the accept load is indexed by the edge the
/// walk just resolved, off the loop-carried chain (the next-state load is
/// the only chained operation).
///
/// When every row base fits the cell word, next cells store the target's
/// row base *pre-shifted* (`child << shift`, see
/// `CompactTable::pre_shifted`), which drops the shift from the walk's
/// load-to-load chain: `row = cells[row + class[b]]` — load, add, load.
#[derive(Debug, Clone)]
pub struct CompactTable<W: CellWord, C: CodePayload> {
    cells: Box<[W]>,
    /// `log2(stride)` — rows are addressed as `state << shift`.
    shift: u32,
    /// Whether next cells hold pre-shifted row bases (`child << shift`)
    /// rather than raw state ids. True whenever the largest row base fits
    /// the cell word — every realistic dictionary; a dense synthetic trie
    /// near the 65 535-state ceiling falls back to raw ids + shift.
    pre_shifted: bool,
    _payload: std::marker::PhantomData<C>,
}

impl<W: CellWord, C: CodePayload> CompactTable<W, C> {
    #[inline]
    fn half(&self) -> usize {
        self.cells.len() / 2
    }

    fn states(&self) -> usize {
        self.half() >> self.shift
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(&*self.cells)
    }

    /// The hot walk, monomorphized over the pre-shift flag so the
    /// non-pre-shifted fallback's extra shift instruction never appears
    /// in the common path. The loads are unchecked; safety rests on two
    /// construction invariants of [`compile_table`]: every next cell
    /// holds `DEAD` (zero under either encoding) or a valid state id /
    /// row base (ids are handed out sequentially, `half == states <<
    /// shift`), and every `classes` entry is `< stride`. So `row + off <
    /// half` and `half + row + off < cells.len()` hold on every step.
    #[inline]
    fn walk_raw<const PRE: bool, F: FnMut(u32, usize)>(
        &self,
        classes: &[u16; 256],
        input: &[u8],
        start: usize,
        mut visit: F,
    ) {
        let shift = self.shift;
        let no_accept = ((1u64 << C::ACCEPT_BITS) - 1) as u32;
        let cells = &*self.cells;
        let half = cells.len() / 2;
        let mut row = (ROOT as usize) << shift;
        let mut len = 0;
        for &b in &input[start..] {
            let idx = row + classes[b as usize] as usize;
            // SAFETY: see the invariants above.
            let next = unsafe { *cells.get_unchecked(idx) }.get();
            if next == DEAD as u64 {
                return;
            }
            let acc = unsafe { *cells.get_unchecked(half + idx) }.get() as u32;
            row = if PRE {
                next as usize
            } else {
                (next as usize) << shift
            };
            len += 1;
            if acc != no_accept {
                visit(acc, len);
            }
        }
    }

    #[inline]
    fn matches_at_raw<F: FnMut(u32, usize)>(
        &self,
        classes: &[u16; 256],
        input: &[u8],
        start: usize,
        visit: F,
    ) {
        if self.pre_shifted {
            self.walk_raw::<true, F>(classes, input, start, visit)
        } else {
            self.walk_raw::<false, F>(classes, input, start, visit)
        }
    }

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(
        &self,
        classes: &[u16; 256],
        input: &[u8],
        start: usize,
        mut visit: F,
    ) {
        self.matches_at_raw(classes, input, start, |acc, _| {
            let (code, depth) = C::unpack_accept(acc);
            visit(code, depth);
        });
    }
}

/// A borrowed view binding one [`CompactTable`] to its class table — the
/// monomorphized [`Matcher`] the DP loops walk, so the narrow/wide layout
/// branch is hoisted out of the per-position loop entirely (see
/// [`CompactAutomaton::view`]).
#[derive(Clone, Copy)]
pub struct CompactView<'a, W: CellWord, C: CodePayload> {
    classes: &'a [u16; 256],
    table: &'a CompactTable<W, C>,
}

impl<W: CellWord, C: CodePayload> Matcher for CompactView<'_, W, C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        self.table.matches_at(self.classes, input, start, visit)
    }

    #[inline]
    fn matches_at_raw<F: FnMut(u32, usize)>(&self, input: &[u8], start: usize, visit: F) {
        self.table.matches_at_raw(self.classes, input, start, visit)
    }

    /// The fused match+DP walk: the relax fold runs inside the table walk
    /// with `best` in a register, monomorphized over the pre-shift flag
    /// like `CompactTable::walk_raw`.
    #[inline]
    fn best_relax<K: RelaxKey>(&self, input: &[u8], start: usize, cells: &[u64], init: u64) -> u64 {
        if self.table.pre_shifted {
            self.relax_walk::<true, K>(input, start, cells, init)
        } else {
            self.relax_walk::<false, K>(input, start, cells, init)
        }
    }
}

impl<W: CellWord, C: CodePayload> CompactView<'_, W, C> {
    /// Steps of the branchless head of [`CompactView::relax_walk`]. On
    /// mixed SMILES decks ~96% of walks die within 6 steps, so nearly all
    /// positions run zero data-dependent branches: the head never tests
    /// for death (a dead walk self-loops through vacant cells in row 0,
    /// whose sentinel accepts the conditional move excludes), and the
    /// single alive-check after the head is taken ~4% of the time —
    /// against ~one hard-to-predict dead-exit branch per position in a
    /// test-every-step walk, worth ~20% encode throughput here. Walk
    /// lengths shift with the dictionary, but the exit distribution's
    /// shape (death concentrated in the first handful of steps with a
    /// thin tail) comes from pattern-length limits, not the corpus.
    const RELAX_HEAD: usize = 6;

    #[inline]
    fn relax_walk<const PRE: bool, K: RelaxKey>(
        &self,
        input: &[u8],
        start: usize,
        cells: &[u64],
        init: u64,
    ) -> u64 {
        let table = self.table;
        let shift = table.shift;
        let no_accept = ((1u64 << C::ACCEPT_BITS) - 1) as u32;
        let tcells = &*table.cells;
        let half = tcells.len() / 2;
        let last = cells.len() - 1;
        let mut row = (ROOT as usize) << shift;
        let mut best = init;
        let mut pos = start;
        if input.len() - start >= Self::RELAX_HEAD {
            for d in 0..Self::RELAX_HEAD {
                let idx = row + self.classes[input[start + d] as usize] as usize;
                // SAFETY: the `CompactTable::walk_raw` invariants; a dead
                // walk stays in row 0, whose cells are vacant.
                let next = unsafe { *tcells.get_unchecked(idx) }.get();
                let acc = unsafe { *tcells.get_unchecked(half + idx) }.get() as u32;
                row = if PRE {
                    next as usize
                } else {
                    (next as usize) << shift
                };
                // `start + d + 1 <= start + RELAX_HEAD <= input.len()`,
                // and `cells` has one entry past the end of the line.
                let key = K::key(cells[start + d + 1], acc);
                let key = if acc == no_accept { u64::MAX } else { key };
                best = best.min(key);
            }
            if row == 0 {
                return best;
            }
            pos = start + Self::RELAX_HEAD;
        }
        for &b in &input[pos..] {
            let idx = row + self.classes[b as usize] as usize;
            // SAFETY: the `CompactTable::walk_raw` invariants.
            let next = unsafe { *tcells.get_unchecked(idx) }.get();
            if next == DEAD as u64 {
                break;
            }
            let acc = unsafe { *tcells.get_unchecked(half + idx) }.get() as u32;
            row = if PRE {
                next as usize
            } else {
                (next as usize) << shift
            };
            pos += 1;
            // The clamp never binds (a walk cannot outrun the line); it
            // keeps the indexing panic-free.
            let key = K::key(cells[pos.min(last)], acc);
            let key = if acc == no_accept { u64::MAX } else { key };
            best = best.min(key);
        }
        best
    }
}

/// The two state-id widths a [`CompactAutomaton`] compiles to, as borrowed
/// matcher views. Callers match once and run the whole encode loop against
/// the monomorphized view.
pub enum CompactLayout<'a, C: CodePayload> {
    /// 16-bit state ids — every dictionary below 65 536 states.
    Narrow(CompactView<'a, C::NarrowCell, C>),
    /// 32-bit state ids — the overflow fallback.
    Wide(CompactView<'a, C::WideCell, C>),
}

/// The cache-conscious matcher layout compiled from a finished [`Trie`] —
/// same states, same BFS numbering, same match stream as
/// [`DenseAutomaton`] (property tests pin all three structures
/// byte-identical), but with byte-class-compressed rows, per-edge accept
/// words riding in the same allocation, and pre-shifted next cells that
/// cut the walk's loop-carried chain to load–add–load. See the module
/// docs for the class-table construction.
#[derive(Debug, Clone)]
pub struct CompactAutomaton<C: CodePayload = u8> {
    /// `byte → class`. Class 0 is the shared always-dead class for bytes
    /// outside the dictionary alphabet (unless all 256 bytes are mapped,
    /// in which case every class is real).
    classes: Box<[u16; 256]>,
    class_count: usize,
    repr: CompactRepr<C>,
    max_depth: usize,
    pattern_count: usize,
}

#[derive(Debug, Clone)]
enum CompactRepr<C: CodePayload> {
    Narrow(CompactTable<C::NarrowCell, C>),
    Wide(CompactTable<C::WideCell, C>),
}

impl<C: CodePayload> CompactAutomaton<C> {
    /// Compile `trie` into the byte-class compressed layout. The trie is
    /// not consumed; it stays the build-time structure.
    pub fn compile(trie: &Trie<C>) -> CompactAutomaton<C> {
        // Harvest the alphabet: every byte any pattern contains.
        let mut present = [false; 256];
        for (b, p) in present.iter_mut().enumerate() {
            *p = trie.root[b] != NONE || trie.root_code[b].is_some();
        }
        for node in &trie.nodes {
            for &(b, _) in &node.children {
                present[b as usize] = true;
            }
        }
        let distinct = present.iter().filter(|&&p| p).count();
        // Class 0 is the dead class for unmapped bytes; mapped bytes get
        // 1, 2, … in ascending byte order. If (pathologically) all 256
        // bytes appear in patterns there is no unmapped byte to route to
        // a dead class, so classes start at 0.
        let first_class = usize::from(distinct < 256);
        let class_count = distinct + first_class;
        let mut classes = Box::new([0u16; 256]);
        let mut next_class = first_class;
        for b in 0..256usize {
            if present[b] {
                classes[b] = next_class as u16;
                next_class += 1;
            }
        }
        // One state per distinct pattern prefix, plus dead and root — the
        // same count the dense BFS allocates.
        let states = 2
            + (0..256)
                .filter(|&b| trie.root[b] != NONE || trie.root_code[b].is_some())
                .count()
            + trie.nodes.iter().map(|n| n.children.len()).sum::<usize>();
        let repr = if states <= u16::MAX as usize + 1 {
            CompactRepr::Narrow(compile_table::<C::NarrowCell, C>(
                trie,
                &classes,
                class_count,
                states,
            ))
        } else {
            CompactRepr::Wide(compile_table::<C::WideCell, C>(
                trie,
                &classes,
                class_count,
                states,
            ))
        };
        CompactAutomaton {
            classes,
            class_count,
            repr,
            max_depth: trie.max_depth(),
            pattern_count: trie.len(),
        }
    }

    /// Number of patterns the source trie held.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of automaton states, dead and root included.
    pub fn states(&self) -> usize {
        match &self.repr {
            CompactRepr::Narrow(t) => t.states(),
            CompactRepr::Wide(t) => t.states(),
        }
    }

    /// Number of byte classes, the shared dead class included.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Whether the 16-bit narrow state layout was selected (false = u32
    /// fallback).
    pub fn is_narrow(&self) -> bool {
        matches!(self.repr, CompactRepr::Narrow(_))
    }

    /// Borrow the layout for monomorphized dispatch: match once, run the
    /// whole DP loop against the returned [`CompactView`].
    #[inline]
    pub fn view(&self) -> CompactLayout<'_, C> {
        match &self.repr {
            CompactRepr::Narrow(t) => CompactLayout::Narrow(CompactView {
                classes: &self.classes,
                table: t,
            }),
            CompactRepr::Wide(t) => CompactLayout::Wide(CompactView {
                classes: &self.classes,
                table: t,
            }),
        }
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`. Convenience dispatch; hot loops use
    /// [`CompactAutomaton::view`] to hoist the layout branch.
    #[inline]
    pub fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        match &self.repr {
            CompactRepr::Narrow(t) => t.matches_at(&self.classes, input, start, visit),
            CompactRepr::Wide(t) => t.matches_at(&self.classes, input, start, visit),
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(C, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<C> {
        if pattern.is_empty() {
            return None;
        }
        let mut result = None;
        self.matches_at(pattern, 0, |code, len| {
            if len == pattern.len() {
                result = Some(code);
            }
        });
        result
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of::<[u16; 256]>()
            + match &self.repr {
                CompactRepr::Narrow(t) => t.memory_bytes(),
                CompactRepr::Wide(t) => t.memory_bytes(),
            }
    }
}

/// The BFS compile at one cell width — the exact allocation order of
/// [`DenseAutomaton::compile`] (root children in byte order, then queue
/// order), so state numbering and therefore the match stream agree. Each
/// allocated state writes its unique incoming edge into the parent's row:
/// the next cell gets the child's pre-shifted row base (or raw id, see
/// `CompactTable::pre_shifted`), the matching accept cell gets the
/// child's accept word or stays at the all-ones no-accept sentinel.
fn compile_table<W: CellWord, C: CodePayload>(
    trie: &Trie<C>,
    classes: &[u16; 256],
    class_count: usize,
    states: usize,
) -> CompactTable<W, C> {
    let stride = class_count.next_power_of_two();
    let shift = stride.trailing_zeros();
    let half = states << shift;
    let pre_shifted = (((states - 1) << shift) as u64) <= W::MAX_VALUE;
    let no_accept = (1u64 << C::ACCEPT_BITS) - 1;
    let mut cells: Vec<W> = vec![W::ZERO; 2 * half];
    cells[half..].fill(W::pack(no_accept));
    let encode = |s: u32| -> W {
        if pre_shifted {
            W::pack((s as u64) << shift)
        } else {
            W::pack(s as u64)
        }
    };
    // States 0 (dead) and 1 (root) carry no incoming edge; their rows are
    // already vacant. BFS numbering starts at 2.
    let mut next_id: u32 = 2;
    let mut queue: std::collections::VecDeque<(u32, u32, u32)> = std::collections::VecDeque::new();
    for (b, &class) in classes.iter().enumerate() {
        let node = trie.root[b];
        if node == NONE && trie.root_code[b].is_none() {
            continue;
        }
        let s = next_id;
        next_id += 1;
        let idx = (ROOT as usize) << shift | class as usize;
        cells[idx] = encode(s);
        if let Some(code) = trie.root_code[b] {
            cells[half + idx] = W::pack(code.pack_accept(1) as u64);
        }
        if node != NONE {
            queue.push_back((s, node, 1));
        }
    }
    while let Some((s, node, depth)) = queue.pop_front() {
        for &(b, child) in &trie.nodes[node as usize].children {
            let cs = next_id;
            next_id += 1;
            let idx = (s as usize) << shift | classes[b as usize] as usize;
            cells[idx] = encode(cs);
            if let Some(code) = trie.nodes[child as usize].code {
                cells[half + idx] = W::pack(code.pack_accept(depth + 1) as u64);
            }
            queue.push_back((cs, child, depth + 1));
        }
    }
    debug_assert_eq!(next_id as usize, states);
    CompactTable {
        cells: cells.into_boxed_slice(),
        shift,
        pre_shifted,
        _payload: std::marker::PhantomData,
    }
}

impl<C: CodePayload> Matcher for CompactAutomaton<C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        CompactAutomaton::matches_at(self, input, start, visit)
    }

    #[inline]
    fn matches_at_raw<F: FnMut(u32, usize)>(&self, input: &[u8], start: usize, visit: F) {
        match &self.repr {
            CompactRepr::Narrow(t) => t.matches_at_raw(&self.classes, input, start, visit),
            CompactRepr::Wide(t) => t.matches_at_raw(&self.classes, input, start, visit),
        }
    }

    #[inline]
    fn best_relax<K: RelaxKey>(&self, input: &[u8], start: usize, cells: &[u64], init: u64) -> u64 {
        match self.view() {
            CompactLayout::Narrow(v) => v.best_relax::<K>(input, start, cells, init),
            CompactLayout::Wide(v) => v.best_relax::<K>(input, start, cells, init),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_matches(t: &Trie, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        t.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn accept_word_packing_round_trips() {
        for (code, depth) in [(0u8, 1usize), (0xFF, 16), (b'C', 7)] {
            let w = code.pack_accept(depth as u32);
            assert_ne!(w, NO_ACCEPT);
            assert_eq!(u8::unpack_accept(w), (code, depth));
        }
        for (code, depth) in [(0u16, 1usize), (0xFFFF, 16), (256 + 7 * 256 + 0x42, 3)] {
            let w = code.pack_accept(depth as u32);
            assert_ne!(w, NO_ACCEPT);
            assert_eq!(u16::unpack_accept(w), (code, depth));
        }
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: Trie = Trie::new();
        assert!(t.is_empty());
        assert_eq!(collect_matches(&t, b"CCO", 0), vec![]);
        assert_eq!(t.longest_match_at(b"CCO", 0), None);
    }

    #[test]
    fn single_byte_patterns() {
        let mut t: Trie = Trie::new();
        t.insert(b"C", 1);
        t.insert(b"O", 2);
        assert_eq!(t.len(), 2);
        assert_eq!(collect_matches(&t, b"CO", 0), vec![(1, 1)]);
        assert_eq!(collect_matches(&t, b"CO", 1), vec![(2, 1)]);
        assert_eq!(t.get(b"C"), Some(1));
        assert_eq!(t.get(b"N"), None);
    }

    #[test]
    fn nested_prefix_patterns_all_reported() {
        let mut t: Trie = Trie::new();
        t.insert(b"C", 10);
        t.insert(b"CC", 11);
        t.insert(b"CCO", 12);
        let m = collect_matches(&t, b"CCOC", 0);
        assert_eq!(m, vec![(10, 1), (11, 2), (12, 3)]);
        assert_eq!(t.longest_match_at(b"CCOC", 0), Some((12, 3)));
        // At position 1 only "C" and "CC"... "CO" is not a pattern.
        assert_eq!(collect_matches(&t, b"CCOC", 1), vec![(10, 1)]);
    }

    #[test]
    fn match_stops_at_input_end() {
        let mut t: Trie = Trie::new();
        t.insert(b"CCCC", 9);
        t.insert(b"CC", 8);
        let m = collect_matches(&t, b"CCC", 0);
        assert_eq!(m, vec![(8, 2)], "CCCC cannot match a 3-byte input");
    }

    #[test]
    fn overlapping_patterns_at_different_starts() {
        let mut t: Trie = Trie::new();
        t.insert(b"c1cc", 1);
        t.insert(b"ccc", 2);
        t.insert(b"cc", 3);
        let input = b"c1ccccc1";
        assert_eq!(collect_matches(&t, input, 0), vec![(1, 4)]);
        assert_eq!(collect_matches(&t, input, 2), vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn reinsert_replaces_code_without_double_count() {
        let mut t: Trie = Trie::new();
        t.insert(b"CC", 1);
        t.insert(b"CC", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"CC"), Some(2));
        t.insert(b"C", 3);
        t.insert(b"C", 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"C"), Some(4));
    }

    #[test]
    fn max_depth_tracks_longest() {
        let mut t: Trie = Trie::new();
        assert_eq!(t.max_depth(), 0);
        t.insert(b"CC", 0);
        assert_eq!(t.max_depth(), 2);
        t.insert(b"C(=O)CC", 1);
        assert_eq!(t.max_depth(), 7);
        t.insert(b"N", 2);
        assert_eq!(t.max_depth(), 7);
    }

    #[test]
    fn high_bytes_work_as_pattern_content() {
        // Patterns may contain any byte (dictionaries are trained on raw
        // lines; escape handling is the compressor's job, not the trie's).
        let mut t: Trie = Trie::new();
        t.insert(&[0x80, 0xFF], 7);
        assert_eq!(t.get(&[0x80, 0xFF]), Some(7));
        assert_eq!(collect_matches(&t, &[0x80, 0xFF, 0x80], 0), vec![(7, 2)]);
    }

    #[test]
    fn get_partial_path_is_none() {
        let mut t: Trie = Trie::new();
        t.insert(b"CCO", 5);
        assert_eq!(t.get(b"CC"), None, "interior node has no code");
        assert_eq!(t.get(b"CCOC"), None);
        assert_eq!(t.get(b""), None);
    }

    fn collect_auto(a: &DenseAutomaton, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        a.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn automaton_matches_trie_on_fixtures() {
        let mut t: Trie = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 10u8),
            (b"CC", 11),
            (b"CCO", 12),
            (b"c1cc", 1),
            (b"ccc", 2),
            (b"cc", 3),
            (b"O", 20),
        ] {
            t.insert(p, c);
        }
        let a = DenseAutomaton::compile(&t);
        assert_eq!(a.len(), t.len());
        assert_eq!(a.max_depth(), t.max_depth());
        for input in [
            b"CCOC".as_slice(),
            b"c1ccccc1",
            b"CCC",
            b"XYZ",
            b"",
            b"OCCOc1cc",
        ] {
            for start in 0..input.len() {
                assert_eq!(
                    collect_auto(&a, input, start),
                    collect_matches(&t, input, start),
                    "input {:?} start {start}",
                    String::from_utf8_lossy(input)
                );
                assert_eq!(
                    a.longest_match_at(input, start),
                    t.longest_match_at(input, start)
                );
            }
        }
        for pat in [b"C".as_slice(), b"CC", b"CCO", b"CCOC", b"cc", b"X", b""] {
            assert_eq!(a.get(pat), t.get(pat), "{:?}", String::from_utf8_lossy(pat));
        }
    }

    #[test]
    fn wide_payload_automaton_matches_trie() {
        // Same walk, u16 payloads — the wide extension's code ids exceed
        // a byte, which is the whole reason the structures are generic.
        let mut t: Trie<u16> = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 67u16),
            (b"CC", 300),
            (b"CCO", 2000),
            (b"c1cc", 256 + 511),
            (b"cc", 999),
        ] {
            t.insert(p, c);
        }
        let a = DenseAutomaton::compile(&t);
        assert_eq!(a.len(), t.len());
        for input in [b"CCOC".as_slice(), b"c1ccccc1", b"XYZ", b""] {
            for start in 0..input.len() {
                let mut vt = Vec::new();
                t.matches_at(input, start, |c, l| vt.push((c, l)));
                let mut va = Vec::new();
                a.matches_at(input, start, |c, l| va.push((c, l)));
                assert_eq!(va, vt, "start {start}");
            }
        }
        assert_eq!(a.get(b"CCO"), Some(2000));
        assert_eq!(a.get(b"CCOX"), None);
    }

    #[test]
    fn empty_automaton_matches_nothing() {
        let a = DenseAutomaton::compile(&Trie::<u8>::new());
        assert!(a.is_empty());
        assert_eq!(a.states(), 2, "just dead + root");
        assert_eq!(collect_auto(&a, b"CCO", 0), vec![]);
        assert_eq!(a.longest_match_at(b"CCO", 0), None);
        assert_eq!(a.get(b"C"), None);
    }

    #[test]
    fn automaton_handles_high_bytes_and_deep_chains() {
        let mut t: Trie = Trie::new();
        t.insert(&[0x80, 0xFF], 7);
        t.insert(&[0xFF], 8);
        let a = DenseAutomaton::compile(&t);
        assert_eq!(collect_auto(&a, &[0x80, 0xFF, 0x80], 0), vec![(7, 2)]);
        assert_eq!(collect_auto(&a, &[0xFF], 0), vec![(8, 1)]);
        assert_eq!(a.get(&[0x80, 0xFF]), Some(7));
        assert_eq!(a.get(&[0x80]), None, "interior state does not accept");
    }

    #[test]
    fn automaton_state_count_and_memory_are_bounded() {
        // The realistic maximum: 222 patterns up to 16 bytes.
        let mut t: Trie = Trie::new();
        for i in 0..222usize {
            let len = 2 + (i % 15);
            let pat: Vec<u8> = (0..len).map(|j| b'A' + ((i + j) % 26) as u8).collect();
            t.insert(&pat, (i % 200) as u8);
        }
        let a = DenseAutomaton::compile(&t);
        // One state per distinct prefix, plus dead and root.
        assert!(a.states() < 4000, "{} states", a.states());
        // The flat tables trade memory for branch-light loads; stays in
        // the low megabytes even at the format ceiling.
        assert!(a.memory_bytes() < 8 << 20, "{} bytes", a.memory_bytes());
    }

    fn collect_compact(a: &CompactAutomaton, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        a.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn compact_matches_trie_and_dense_on_fixtures() {
        let mut t: Trie = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 10u8),
            (b"CC", 11),
            (b"CCO", 12),
            (b"c1cc", 1),
            (b"ccc", 2),
            (b"cc", 3),
            (b"O", 20),
        ] {
            t.insert(p, c);
        }
        let dense = DenseAutomaton::compile(&t);
        let compact = CompactAutomaton::compile(&t);
        assert!(compact.is_narrow());
        assert_eq!(compact.len(), t.len());
        assert_eq!(compact.max_depth(), t.max_depth());
        assert_eq!(compact.states(), dense.states());
        // Alphabet: C, O, c, 1 → 4 classes plus the dead class.
        assert_eq!(compact.class_count(), 5);
        assert!(
            compact.memory_bytes() < dense.memory_bytes() / 10,
            "compact {} vs dense {}",
            compact.memory_bytes(),
            dense.memory_bytes()
        );
        for input in [
            b"CCOC".as_slice(),
            b"c1ccccc1",
            b"CCC",
            b"XYZ",
            b"",
            b"OCCOc1cc",
            &[0x80, 0xFF, b'C'],
        ] {
            for start in 0..input.len() {
                assert_eq!(
                    collect_compact(&compact, input, start),
                    collect_matches(&t, input, start),
                    "input {:?} start {start}",
                    String::from_utf8_lossy(input)
                );
                assert_eq!(
                    compact.longest_match_at(input, start),
                    t.longest_match_at(input, start)
                );
            }
        }
        for pat in [b"C".as_slice(), b"CC", b"CCO", b"CCOC", b"cc", b"X", b""] {
            assert_eq!(compact.get(pat), t.get(pat));
        }
    }

    #[test]
    fn compact_view_matches_per_call_dispatch() {
        let mut t: Trie = Trie::new();
        t.insert(b"CC", 1);
        t.insert(b"C", 2);
        let compact = CompactAutomaton::compile(&t);
        let input = b"CCC";
        let mut via_view = Vec::new();
        match compact.view() {
            CompactLayout::Narrow(v) => v.matches_at(input, 0, |c, l| via_view.push((c, l))),
            CompactLayout::Wide(v) => v.matches_at(input, 0, |c, l| via_view.push((c, l))),
        }
        assert_eq!(via_view, collect_compact(&compact, input, 0));
    }

    #[test]
    fn compact_wide_payload_matches_trie() {
        let mut t: Trie<u16> = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 67u16),
            (b"CC", 300),
            (b"CCO", 2000),
            (b"c1cc", 256 + 511),
            (b"cc", 999),
        ] {
            t.insert(p, c);
        }
        let compact = CompactAutomaton::compile(&t);
        for input in [b"CCOC".as_slice(), b"c1ccccc1", b"XYZ", b""] {
            for start in 0..input.len() {
                let mut vt = Vec::new();
                t.matches_at(input, start, |c, l| vt.push((c, l)));
                let mut vc = Vec::new();
                compact.matches_at(input, start, |c, l| vc.push((c, l)));
                assert_eq!(vc, vt, "start {start}");
            }
        }
        assert_eq!(compact.get(b"CCO"), Some(2000));
        assert_eq!(compact.get(b"CCOX"), None);
    }

    #[test]
    fn compact_empty_trie_matches_nothing() {
        let a = CompactAutomaton::compile(&Trie::<u8>::new());
        assert!(a.is_empty());
        assert_eq!(a.states(), 2, "just dead + root");
        assert_eq!(a.class_count(), 1, "just the dead class");
        assert_eq!(collect_compact(&a, b"CCO", 0), vec![]);
        assert_eq!(a.get(b"C"), None);
    }

    #[test]
    fn compact_u16_overflow_falls_back_to_u32() {
        // from_patterns-built dictionaries never get near 65k states, so
        // drive the compiler directly with a synthetic prefix explosion:
        // 50×50×30 three-byte patterns ≈ 77k distinct prefixes.
        let mut t: Trie<u16> = Trie::new();
        for a in 0..50u8 {
            for b in 0..50u8 {
                for c in 0..30u8 {
                    t.insert(&[a, b + 50, c + 100], (a as u16) << 8 | b as u16);
                }
            }
        }
        let compact = CompactAutomaton::compile(&t);
        assert!(!compact.is_narrow(), "{} states", compact.states());
        assert!(compact.states() > u16::MAX as usize + 1);
        let dense = DenseAutomaton::compile(&t);
        assert_eq!(compact.states(), dense.states());
        for input in [
            [3u8, 53, 101, 7].as_slice(),
            &[49, 99, 129],
            &[0, 0, 0],
            &[200, 200],
        ] {
            for start in 0..input.len() {
                let mut vt = Vec::new();
                t.matches_at(input, start, |c, l| vt.push((c, l)));
                let mut vc = Vec::new();
                compact.matches_at(input, start, |c, l| vc.push((c, l)));
                assert_eq!(vc, vt);
            }
        }
    }

    #[test]
    fn dense_dictionary_scales() {
        // 222 patterns of length up to 16 — the realistic maximum.
        let mut t: Trie = Trie::new();
        for i in 0..222usize {
            let len = 2 + (i % 15);
            let pat: Vec<u8> = (0..len).map(|j| b'A' + ((i + j) % 26) as u8).collect();
            t.insert(&pat, (i % 200) as u8);
        }
        assert!(t.len() <= 222);
        assert!(t.max_depth() <= 16);
        // Memory stays small (well under a megabyte).
        assert!(t.memory_bytes() < 1 << 20, "{} bytes", t.memory_bytes());
    }
}
