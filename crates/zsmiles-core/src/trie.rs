//! Multi-pattern matching for the encoder (paper §IV-D1: "the dictionary D
//! is represented by a trie to do pattern matching").
//!
//! Two structures share the job:
//!
//! * [`Trie`] — the pointer-linked build-time structure. Cheap to mutate
//!   (dictionary training inserts and re-inserts patterns), compact, but
//!   every step of a match walk scans a sorted child list.
//! * [`DenseAutomaton`] — the flat run-time structure the hot encode loop
//!   walks, compiled from a finished [`Trie`]. One `state × 256` transition
//!   table plus a packed per-state `(code, depth)` accept word turn each
//!   step of [`DenseAutomaton::matches_at`] into two array loads and a
//!   compare — no child-list scan, no `Option` unwrapping.
//!
//! Both are generic over the [`CodePayload`] a match reports: the one-byte
//! codec stores `u8` code bytes, the wide extension stores its dense
//! `u16` code ids ([`crate::wide`]) — same structures, same walk, one
//! implementation. Both implement [`Matcher`], the interface the
//! shortest-path encoders ([`crate::sp`], the wide DP) walk, and are
//! pinned byte-identical by property tests.

/// Node index sentinel.
const NONE: u32 = u32::MAX;

/// A payload a pattern match reports, packable into a dense per-state
/// accept word together with the match depth. The base codec's payload is
/// the code byte itself (`u8`); the wide extension's is its dense 16-bit
/// code id.
pub trait CodePayload: Copy + Eq + Ord + std::fmt::Debug {
    /// Pack `(self, depth)` into one accept word. `depth` is a pattern
    /// length, bounded by [`crate::dict::MAX_PATTERN_LEN`], so both
    /// implementations fit a `u32` with room to spare (and stay clear of
    /// the `u32::MAX` no-accept sentinel).
    fn pack_accept(self, depth: u32) -> u32;
    /// Inverse of [`CodePayload::pack_accept`]: `(payload, depth)`.
    fn unpack_accept(word: u32) -> (Self, usize);
}

impl CodePayload for u8 {
    #[inline]
    fn pack_accept(self, depth: u32) -> u32 {
        (depth << 8) | self as u32
    }
    #[inline]
    fn unpack_accept(word: u32) -> (Self, usize) {
        ((word & 0xFF) as u8, (word >> 8) as usize)
    }
}

impl CodePayload for u16 {
    #[inline]
    fn pack_accept(self, depth: u32) -> u32 {
        (depth << 16) | self as u32
    }
    #[inline]
    fn unpack_accept(word: u32) -> (Self, usize) {
        ((word & 0xFFFF) as u16, (word >> 16) as usize)
    }
}

/// The interface the shortest-path encoders walk: report every dictionary
/// pattern matching at `input[start..]`, shortest first. Implemented by
/// the build-time [`Trie`] and the flat [`DenseAutomaton`] at either
/// payload width; generic (not dyn) so the per-position call inlines into
/// the DP loop.
pub trait Matcher {
    /// What a match reports: the base codec's `u8` code byte, or the wide
    /// extension's dense `u16` code id.
    type Code: CodePayload;

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`.
    fn matches_at<F: FnMut(Self::Code, usize)>(&self, input: &[u8], start: usize, visit: F);
}

#[derive(Debug, Clone)]
struct Node<C> {
    /// Sorted (byte, child) pairs.
    children: Vec<(u8, u32)>,
    /// Code emitted if a pattern ends here.
    code: Option<C>,
}

/// Multi-pattern matcher over byte strings, generic over the payload a
/// match reports (`u8` base code bytes by default).
#[derive(Debug, Clone)]
pub struct Trie<C: CodePayload = u8> {
    /// Root children: direct byte-indexed table.
    root: [u32; 256],
    /// Codes for single-byte patterns, kept out of `nodes` so the hot
    /// single-char path is one load.
    root_code: [Option<C>; 256],
    nodes: Vec<Node<C>>,
    max_depth: usize,
    pattern_count: usize,
}

impl<C: CodePayload> Default for Trie<C> {
    fn default() -> Self {
        Trie::new()
    }
}

impl<C: CodePayload> Trie<C> {
    pub fn new() -> Self {
        Trie {
            root: [NONE; 256],
            root_code: [None; 256],
            nodes: Vec::new(),
            max_depth: 0,
            pattern_count: 0,
        }
    }

    /// Number of patterns inserted.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Insert `pattern` with its output `code`. Re-inserting a pattern
    /// replaces its code.
    pub fn insert(&mut self, pattern: &[u8], code: C) {
        assert!(!pattern.is_empty(), "empty patterns are not meaningful");
        self.max_depth = self.max_depth.max(pattern.len());
        if pattern.len() == 1 {
            if self.root_code[pattern[0] as usize].is_none() {
                self.pattern_count += 1;
            }
            self.root_code[pattern[0] as usize] = Some(code);
            return;
        }
        let b0 = pattern[0] as usize;
        let mut cur = if self.root[b0] == NONE {
            let idx = self.alloc_node();
            self.root[b0] = idx;
            idx
        } else {
            self.root[b0]
        };
        for &b in &pattern[1..] {
            cur = match self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
            {
                Some(&(_, child)) => child,
                None => {
                    let idx = self.alloc_node();
                    let node = &mut self.nodes[cur as usize];
                    let pos = node.children.partition_point(|(cb, _)| *cb < b);
                    node.children.insert(pos, (b, idx));
                    idx
                }
            };
        }
        let node = &mut self.nodes[cur as usize];
        if node.code.is_none() {
            self.pattern_count += 1;
        }
        node.code = Some(code);
    }

    fn alloc_node(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            children: Vec::new(),
            code: None,
        });
        idx
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`.
    #[inline]
    pub fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let first = input[start] as usize;
        if let Some(code) = self.root_code[first] {
            visit(code, 1);
        }
        let mut cur = self.root[first];
        let mut depth = 1;
        while cur != NONE && start + depth < input.len() {
            let b = input[start + depth];
            let node = &self.nodes[cur as usize];
            match node.children.iter().find(|(cb, _)| *cb == b) {
                Some(&(_, child)) => {
                    depth += 1;
                    let child_node = &self.nodes[child as usize];
                    if let Some(code) = child_node.code {
                        visit(code, depth);
                    }
                    cur = child;
                }
                None => break,
            }
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(C, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<C> {
        if pattern.is_empty() {
            return None;
        }
        if pattern.len() == 1 {
            return self.root_code[pattern[0] as usize];
        }
        let mut cur = self.root[pattern[0] as usize];
        for &b in &pattern[1..] {
            if cur == NONE {
                return None;
            }
            cur = self.nodes[cur as usize]
                .children
                .iter()
                .find(|(cb, _)| *cb == b)
                .map(|&(_, c)| c)
                .unwrap_or(NONE);
        }
        if cur == NONE {
            None
        } else {
            self.nodes[cur as usize].code
        }
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<Node<C>>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>()
    }
}

impl<C: CodePayload> Matcher for Trie<C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        Trie::matches_at(self, input, start, visit)
    }
}

// ---------------------------------------------------------------------------
// DenseAutomaton
// ---------------------------------------------------------------------------

/// Dead state: every transition out of it loops back to it, so a walk
/// tests one sentinel instead of an `Option`.
const DEAD: u32 = 0;
/// Start state of every match walk.
const ROOT: u32 = 1;
/// Accept-word sentinel for "no pattern ends in this state".
const NO_ACCEPT: u32 = u32::MAX;

/// A flat table-driven matcher compiled from a finished [`Trie`].
///
/// # Layout
///
/// * `next` — a dense `state × 256 → state` transition table. One load per
///   consumed input byte; a missing edge lands in the dead state
///   (state 0), whose row points back at itself.
/// * `accept` — one packed word per state: the [`CodePayload`] accept
///   record `(code, depth)` if a pattern ends in that state, a sentinel
///   otherwise. Because every state sits at a fixed distance from the
///   root, a single word per state carries the whole record.
///
/// # Trade-off vs the node trie
///
/// The trie stores each node's children as a sorted `Vec<(u8, u32)>` —
/// compact (a few KiB) but every step of a match is a linear child scan
/// plus a pointer chase into a separately allocated list. The automaton
/// spends 1 KiB of transition row per state (~1–3 MiB for a full
/// 222-pattern base dictionary, up to the low tens of MiB for a maximal
/// wide one) to make each step two indexed loads into two flat arrays
/// with no data-dependent branches beyond the dead-state exit. The
/// shortest-path DPs consult the matcher once per input position per
/// line, so this is the single hottest loop in either encoder; the memory
/// is paid once per loaded dictionary. Dictionaries are built with the
/// mutable [`Trie`] and compiled once via [`DenseAutomaton::compile`];
/// the trie remains available for introspection and as the reference
/// implementation the property tests pin the automaton against.
#[derive(Debug, Clone)]
pub struct DenseAutomaton<C: CodePayload = u8> {
    /// `next[state << 8 | byte]` = successor state (row-major by state).
    next: Box<[u32]>,
    /// `accept[state]` = [`CodePayload::pack_accept`], or [`NO_ACCEPT`].
    accept: Box<[u32]>,
    max_depth: usize,
    pattern_count: usize,
    _payload: std::marker::PhantomData<C>,
}

impl<C: CodePayload> DenseAutomaton<C> {
    /// Compile `trie` into flat tables. The trie is not consumed; it stays
    /// the build-time structure.
    pub fn compile(trie: &Trie<C>) -> DenseAutomaton<C> {
        // States 0 (dead) and 1 (root). The dead row is all zeros, which
        // is exactly "every transition loops to dead".
        let mut next = vec![DEAD; 2 * 256];
        let mut accept = vec![NO_ACCEPT; 2];
        let alloc = |next: &mut Vec<u32>, accept: &mut Vec<u32>| -> u32 {
            let s = accept.len() as u32;
            next.extend(std::iter::repeat_n(DEAD, 256));
            accept.push(NO_ACCEPT);
            s
        };
        // Breadth-first over the trie so states are allocated level by
        // level: (state, trie node, depth of that node's path).
        let mut queue: std::collections::VecDeque<(u32, u32, u32)> =
            std::collections::VecDeque::new();
        for b in 0..256usize {
            let node = trie.root[b];
            if node == NONE && trie.root_code[b].is_none() {
                continue;
            }
            let s = alloc(&mut next, &mut accept);
            next[(ROOT as usize) << 8 | b] = s;
            if let Some(code) = trie.root_code[b] {
                accept[s as usize] = code.pack_accept(1);
            }
            if node != NONE {
                queue.push_back((s, node, 1));
            }
        }
        while let Some((s, node, depth)) = queue.pop_front() {
            for &(b, child) in &trie.nodes[node as usize].children {
                let cs = alloc(&mut next, &mut accept);
                next[(s as usize) << 8 | b as usize] = cs;
                if let Some(code) = trie.nodes[child as usize].code {
                    accept[cs as usize] = code.pack_accept(depth + 1);
                }
                queue.push_back((cs, child, depth + 1));
            }
        }
        DenseAutomaton {
            next: next.into_boxed_slice(),
            accept: accept.into_boxed_slice(),
            max_depth: trie.max_depth(),
            pattern_count: trie.len(),
            _payload: std::marker::PhantomData,
        }
    }

    /// Number of patterns the source trie held.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Length of the longest pattern.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of automaton states, dead and root included.
    pub fn states(&self) -> usize {
        self.accept.len()
    }

    /// Visit every pattern match starting at `input[start]`, shortest
    /// first: `visit(code, length)`. The hot-path walk: two flat loads per
    /// consumed byte, exiting on the dead state (reached after at most
    /// `max_depth + 1` steps).
    #[inline]
    pub fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, mut visit: F) {
        let mut state = ROOT as usize;
        for &b in &input[start..] {
            state = self.next[state << 8 | b as usize] as usize;
            if state == DEAD as usize {
                return;
            }
            let acc = self.accept[state];
            if acc != NO_ACCEPT {
                let (code, depth) = C::unpack_accept(acc);
                visit(code, depth);
            }
        }
    }

    /// The longest match at `input[start]`, if any: `(code, length)`.
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<(C, usize)> {
        let mut best = None;
        self.matches_at(input, start, |code, len| best = Some((code, len)));
        best
    }

    /// Exact lookup of one pattern.
    pub fn get(&self, pattern: &[u8]) -> Option<C> {
        if pattern.is_empty() {
            return None;
        }
        let mut state = ROOT as usize;
        for &b in pattern {
            state = self.next[state << 8 | b as usize] as usize;
            if state == DEAD as usize {
                return None;
            }
        }
        let acc = self.accept[state];
        // Only a full-length accept counts (depth equals the path length
        // by construction, so presence is sufficient).
        if acc == NO_ACCEPT {
            None
        } else {
            Some(C::unpack_accept(acc).0)
        }
    }

    /// Approximate heap usage in bytes (for capacity planning in docs).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.next.len() * std::mem::size_of::<u32>()
            + self.accept.len() * std::mem::size_of::<u32>()
    }
}

impl<C: CodePayload> Matcher for DenseAutomaton<C> {
    type Code = C;

    #[inline]
    fn matches_at<F: FnMut(C, usize)>(&self, input: &[u8], start: usize, visit: F) {
        DenseAutomaton::matches_at(self, input, start, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_matches(t: &Trie, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        t.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn accept_word_packing_round_trips() {
        for (code, depth) in [(0u8, 1usize), (0xFF, 16), (b'C', 7)] {
            let w = code.pack_accept(depth as u32);
            assert_ne!(w, NO_ACCEPT);
            assert_eq!(u8::unpack_accept(w), (code, depth));
        }
        for (code, depth) in [(0u16, 1usize), (0xFFFF, 16), (256 + 7 * 256 + 0x42, 3)] {
            let w = code.pack_accept(depth as u32);
            assert_ne!(w, NO_ACCEPT);
            assert_eq!(u16::unpack_accept(w), (code, depth));
        }
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: Trie = Trie::new();
        assert!(t.is_empty());
        assert_eq!(collect_matches(&t, b"CCO", 0), vec![]);
        assert_eq!(t.longest_match_at(b"CCO", 0), None);
    }

    #[test]
    fn single_byte_patterns() {
        let mut t: Trie = Trie::new();
        t.insert(b"C", 1);
        t.insert(b"O", 2);
        assert_eq!(t.len(), 2);
        assert_eq!(collect_matches(&t, b"CO", 0), vec![(1, 1)]);
        assert_eq!(collect_matches(&t, b"CO", 1), vec![(2, 1)]);
        assert_eq!(t.get(b"C"), Some(1));
        assert_eq!(t.get(b"N"), None);
    }

    #[test]
    fn nested_prefix_patterns_all_reported() {
        let mut t: Trie = Trie::new();
        t.insert(b"C", 10);
        t.insert(b"CC", 11);
        t.insert(b"CCO", 12);
        let m = collect_matches(&t, b"CCOC", 0);
        assert_eq!(m, vec![(10, 1), (11, 2), (12, 3)]);
        assert_eq!(t.longest_match_at(b"CCOC", 0), Some((12, 3)));
        // At position 1 only "C" and "CC"... "CO" is not a pattern.
        assert_eq!(collect_matches(&t, b"CCOC", 1), vec![(10, 1)]);
    }

    #[test]
    fn match_stops_at_input_end() {
        let mut t: Trie = Trie::new();
        t.insert(b"CCCC", 9);
        t.insert(b"CC", 8);
        let m = collect_matches(&t, b"CCC", 0);
        assert_eq!(m, vec![(8, 2)], "CCCC cannot match a 3-byte input");
    }

    #[test]
    fn overlapping_patterns_at_different_starts() {
        let mut t: Trie = Trie::new();
        t.insert(b"c1cc", 1);
        t.insert(b"ccc", 2);
        t.insert(b"cc", 3);
        let input = b"c1ccccc1";
        assert_eq!(collect_matches(&t, input, 0), vec![(1, 4)]);
        assert_eq!(collect_matches(&t, input, 2), vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn reinsert_replaces_code_without_double_count() {
        let mut t: Trie = Trie::new();
        t.insert(b"CC", 1);
        t.insert(b"CC", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"CC"), Some(2));
        t.insert(b"C", 3);
        t.insert(b"C", 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"C"), Some(4));
    }

    #[test]
    fn max_depth_tracks_longest() {
        let mut t: Trie = Trie::new();
        assert_eq!(t.max_depth(), 0);
        t.insert(b"CC", 0);
        assert_eq!(t.max_depth(), 2);
        t.insert(b"C(=O)CC", 1);
        assert_eq!(t.max_depth(), 7);
        t.insert(b"N", 2);
        assert_eq!(t.max_depth(), 7);
    }

    #[test]
    fn high_bytes_work_as_pattern_content() {
        // Patterns may contain any byte (dictionaries are trained on raw
        // lines; escape handling is the compressor's job, not the trie's).
        let mut t: Trie = Trie::new();
        t.insert(&[0x80, 0xFF], 7);
        assert_eq!(t.get(&[0x80, 0xFF]), Some(7));
        assert_eq!(collect_matches(&t, &[0x80, 0xFF, 0x80], 0), vec![(7, 2)]);
    }

    #[test]
    fn get_partial_path_is_none() {
        let mut t: Trie = Trie::new();
        t.insert(b"CCO", 5);
        assert_eq!(t.get(b"CC"), None, "interior node has no code");
        assert_eq!(t.get(b"CCOC"), None);
        assert_eq!(t.get(b""), None);
    }

    fn collect_auto(a: &DenseAutomaton, input: &[u8], start: usize) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        a.matches_at(input, start, |c, l| v.push((c, l)));
        v
    }

    #[test]
    fn automaton_matches_trie_on_fixtures() {
        let mut t: Trie = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 10u8),
            (b"CC", 11),
            (b"CCO", 12),
            (b"c1cc", 1),
            (b"ccc", 2),
            (b"cc", 3),
            (b"O", 20),
        ] {
            t.insert(p, c);
        }
        let a = DenseAutomaton::compile(&t);
        assert_eq!(a.len(), t.len());
        assert_eq!(a.max_depth(), t.max_depth());
        for input in [
            b"CCOC".as_slice(),
            b"c1ccccc1",
            b"CCC",
            b"XYZ",
            b"",
            b"OCCOc1cc",
        ] {
            for start in 0..input.len() {
                assert_eq!(
                    collect_auto(&a, input, start),
                    collect_matches(&t, input, start),
                    "input {:?} start {start}",
                    String::from_utf8_lossy(input)
                );
                assert_eq!(
                    a.longest_match_at(input, start),
                    t.longest_match_at(input, start)
                );
            }
        }
        for pat in [b"C".as_slice(), b"CC", b"CCO", b"CCOC", b"cc", b"X", b""] {
            assert_eq!(a.get(pat), t.get(pat), "{:?}", String::from_utf8_lossy(pat));
        }
    }

    #[test]
    fn wide_payload_automaton_matches_trie() {
        // Same walk, u16 payloads — the wide extension's code ids exceed
        // a byte, which is the whole reason the structures are generic.
        let mut t: Trie<u16> = Trie::new();
        for (p, c) in [
            (b"C".as_slice(), 67u16),
            (b"CC", 300),
            (b"CCO", 2000),
            (b"c1cc", 256 + 511),
            (b"cc", 999),
        ] {
            t.insert(p, c);
        }
        let a = DenseAutomaton::compile(&t);
        assert_eq!(a.len(), t.len());
        for input in [b"CCOC".as_slice(), b"c1ccccc1", b"XYZ", b""] {
            for start in 0..input.len() {
                let mut vt = Vec::new();
                t.matches_at(input, start, |c, l| vt.push((c, l)));
                let mut va = Vec::new();
                a.matches_at(input, start, |c, l| va.push((c, l)));
                assert_eq!(va, vt, "start {start}");
            }
        }
        assert_eq!(a.get(b"CCO"), Some(2000));
        assert_eq!(a.get(b"CCOX"), None);
    }

    #[test]
    fn empty_automaton_matches_nothing() {
        let a = DenseAutomaton::compile(&Trie::<u8>::new());
        assert!(a.is_empty());
        assert_eq!(a.states(), 2, "just dead + root");
        assert_eq!(collect_auto(&a, b"CCO", 0), vec![]);
        assert_eq!(a.longest_match_at(b"CCO", 0), None);
        assert_eq!(a.get(b"C"), None);
    }

    #[test]
    fn automaton_handles_high_bytes_and_deep_chains() {
        let mut t: Trie = Trie::new();
        t.insert(&[0x80, 0xFF], 7);
        t.insert(&[0xFF], 8);
        let a = DenseAutomaton::compile(&t);
        assert_eq!(collect_auto(&a, &[0x80, 0xFF, 0x80], 0), vec![(7, 2)]);
        assert_eq!(collect_auto(&a, &[0xFF], 0), vec![(8, 1)]);
        assert_eq!(a.get(&[0x80, 0xFF]), Some(7));
        assert_eq!(a.get(&[0x80]), None, "interior state does not accept");
    }

    #[test]
    fn automaton_state_count_and_memory_are_bounded() {
        // The realistic maximum: 222 patterns up to 16 bytes.
        let mut t: Trie = Trie::new();
        for i in 0..222usize {
            let len = 2 + (i % 15);
            let pat: Vec<u8> = (0..len).map(|j| b'A' + ((i + j) % 26) as u8).collect();
            t.insert(&pat, (i % 200) as u8);
        }
        let a = DenseAutomaton::compile(&t);
        // One state per distinct prefix, plus dead and root.
        assert!(a.states() < 4000, "{} states", a.states());
        // The flat tables trade memory for branch-light loads; stays in
        // the low megabytes even at the format ceiling.
        assert!(a.memory_bytes() < 8 << 20, "{} bytes", a.memory_bytes());
    }

    #[test]
    fn dense_dictionary_scales() {
        // 222 patterns of length up to 16 — the realistic maximum.
        let mut t: Trie = Trie::new();
        for i in 0..222usize {
            let len = 2 + (i % 15);
            let pat: Vec<u8> = (0..len).map(|j| b'A' + ((i + j) % 26) as u8).collect();
            t.insert(&pat, (i % 200) as u8);
        }
        assert!(t.len() <= 222);
        assert!(t.max_depth() <= 16);
        // Memory stays small (well under a megabyte).
        assert!(t.memory_bytes() < 1 << 20, "{} bytes", t.memory_bytes());
    }
}
