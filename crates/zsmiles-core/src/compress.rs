//! Line-oriented compression engine (paper Fig. 3, upper path:
//! preprocess → compress → store).

use crate::dict::Dictionary;
use crate::engine::{LineEncoder, PreprocessStage};
use crate::sp::{self, encode_line, SpAlgorithm, SpScratch};
use crate::trie::CompactLayout;

/// Which pattern-matching structure the encoder walks. All three produce
/// byte-identical output; the byte-class compressed automaton is the
/// default hot path, and the dense automaton and node trie remain
/// selectable so the throughput harness can measure all of them in one
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Byte-class compressed interleaved rows
    /// ([`crate::trie::CompactAutomaton`]) — also unlocks the fused
    /// batched DP ([`crate::sp::encode_lines_batched`]).
    #[default]
    Compact,
    /// Flat `state × 256` tables ([`crate::trie::DenseAutomaton`]).
    DenseAutomaton,
    /// The pointer-linked build-time [`crate::trie::Trie`].
    NodeTrie,
}

/// Accounting for one compression run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressStats {
    pub lines: usize,
    /// Input payload bytes (newlines excluded).
    pub in_bytes: usize,
    /// Output payload bytes (newlines excluded).
    pub out_bytes: usize,
    /// Lines whose SMILES pre-processing failed (compressed raw).
    pub preprocess_failures: usize,
}

impl CompressStats {
    /// Compression ratio, compressed / original — the paper's metric
    /// (lower is better; 0.29 is the headline number).
    pub fn ratio(&self) -> f64 {
        if self.in_bytes == 0 {
            1.0
        } else {
            self.out_bytes as f64 / self.in_bytes as f64
        }
    }

    pub fn merge(&mut self, other: &CompressStats) {
        self.lines += other.lines;
        self.in_bytes += other.in_bytes;
        self.out_bytes += other.out_bytes;
        self.preprocess_failures += other.preprocess_failures;
    }
}

/// A reusable compressor bound to one dictionary. Holds all scratch
/// buffers, so per-line compression is allocation-free in steady state.
pub struct Compressor<'d> {
    dict: &'d Dictionary,
    algo: SpAlgorithm,
    matcher: MatcherKind,
    /// The shared ring-ID preprocessing stage. Enabled by default to
    /// whatever the dictionary was trained with — mixing the two wastes
    /// ratio but is never incorrect, so it is a tunable, not an invariant.
    preprocess: PreprocessStage,
    scratch: SpScratch,
    /// Staging for preprocessed sources of one batched group (the per-line
    /// [`PreprocessStage`] buffer is reused per line, so a batch needs its
    /// own arena).
    batch_buf: Vec<u8>,
}

impl<'d> Compressor<'d> {
    pub fn new(dict: &'d Dictionary) -> Self {
        Compressor {
            dict,
            algo: SpAlgorithm::default(),
            matcher: MatcherKind::default(),
            preprocess: PreprocessStage::new(dict.preprocessed()),
            scratch: SpScratch::new(),
            batch_buf: Vec::new(),
        }
    }

    pub fn with_algorithm(mut self, algo: SpAlgorithm) -> Self {
        self.algo = algo;
        self
    }

    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    pub fn with_preprocess(mut self, on: bool) -> Self {
        self.preprocess.set_enabled(on);
        self
    }

    pub fn dictionary(&self) -> &Dictionary {
        self.dict
    }

    /// Compress one line (no newline), appending code bytes to `out`.
    /// Returns `(bytes_written, preprocess_failed)`.
    pub fn compress_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> (usize, bool) {
        let (src, failed) = self.preprocess.apply(line);
        let n = match self.matcher {
            MatcherKind::Compact => match self.dict.compact().view() {
                CompactLayout::Narrow(v) => encode_line(&v, src, self.algo, &mut self.scratch, out),
                CompactLayout::Wide(v) => encode_line(&v, src, self.algo, &mut self.scratch, out),
            },
            MatcherKind::DenseAutomaton => encode_line(
                self.dict.automaton(),
                src,
                self.algo,
                &mut self.scratch,
                out,
            ),
            MatcherKind::NodeTrie => {
                encode_line(self.dict.trie(), src, self.algo, &mut self.scratch, out)
            }
        };
        (n, failed)
    }

    /// Compress a newline-separated buffer into `out` (also
    /// newline-separated, same line count and order — the random-access
    /// property).
    pub fn compress_buffer(&mut self, input: &[u8], out: &mut Vec<u8>) -> CompressStats {
        crate::engine::encode_buffer(self, input, out)
    }
}

impl LineEncoder for Compressor<'_> {
    fn encode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> (usize, bool) {
        self.compress_line(line, out)
    }

    /// The fused batched path: compact matcher + backward DP run the whole
    /// group through [`sp::encode_lines_batched`]; other configurations
    /// fall back to the per-line loop. Both are byte-identical.
    fn encode_lines(&mut self, lines: &[&[u8]], out: &mut Vec<u8>) -> CompressStats {
        if self.matcher != MatcherKind::Compact || self.algo != SpAlgorithm::BackwardDp {
            return crate::engine::encode_lines_serial(self, lines, out);
        }
        let mut stats = CompressStats::default();
        for chunk in lines.chunks(sp::BATCH_LINES) {
            let mut srcs: [&[u8]; sp::BATCH_LINES] = [b""; sp::BATCH_LINES];
            let mut spans = [(0usize, 0usize); sp::BATCH_LINES];
            self.batch_buf.clear();
            if self.preprocess.enabled() {
                for (k, &line) in chunk.iter().enumerate() {
                    let (src, failed) = self.preprocess.apply(line);
                    stats.preprocess_failures += failed as usize;
                    spans[k] = (self.batch_buf.len(), src.len());
                    self.batch_buf.extend_from_slice(src);
                }
                for (k, (start, len)) in spans.iter().take(chunk.len()).enumerate() {
                    srcs[k] = &self.batch_buf[*start..start + len];
                }
            } else {
                srcs[..chunk.len()].copy_from_slice(chunk);
            }
            stats.lines += chunk.len();
            stats.in_bytes += chunk.iter().map(|l| l.len()).sum::<usize>();
            stats.out_bytes += match self.dict.compact().view() {
                CompactLayout::Narrow(v) => {
                    sp::encode_lines_batched(&v, &srcs[..chunk.len()], &mut self.scratch, out)
                }
                CompactLayout::Wide(v) => {
                    sp::encode_lines_batched(&v, &srcs[..chunk.len()], &mut self.scratch, out)
                }
            };
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Prepopulation;
    use crate::dict::builder::DictBuilder;

    fn alphabet_dict() -> Dictionary {
        Dictionary::identity_only(Prepopulation::SmilesAlphabet)
    }

    #[test]
    fn identity_dictionary_never_expands_compliant_smiles() {
        let d = alphabet_dict();
        let mut c = Compressor::new(&d).with_preprocess(false);
        for line in [
            "COc1cc(C=O)ccc1O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "[13C@@H](N)(C)C(=O)O",
            "C/C=C\\C.[NH4+].[Cl-]",
        ] {
            let mut out = Vec::new();
            let (n, _) = c.compress_line(line.as_bytes(), &mut out);
            assert_eq!(n, line.len(), "identity codes: size preserved for {line}");
            assert_eq!(out, line.as_bytes(), "and bytes preserved");
        }
    }

    #[test]
    fn trained_dictionary_shrinks_repetitive_deck() {
        let deck: Vec<&[u8]> = vec![b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"; 50];
        let d = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(deck.iter().copied())
        .unwrap();
        let mut c = Compressor::new(&d);
        let input: Vec<u8> = deck
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut out = Vec::new();
        let stats = c.compress_buffer(&input, &mut out);
        assert_eq!(stats.lines, 50);
        assert!(
            stats.ratio() < 0.35,
            "repetitive deck should compress hard, got {}",
            stats.ratio()
        );
        // Line structure preserved.
        assert_eq!(out.iter().filter(|&&b| b == b'\n').count(), 50);
    }

    #[test]
    fn matcher_kinds_compress_identically() {
        let deck: Vec<&[u8]> = [
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2".as_slice(),
            b"COc1cc(C=O)ccc1O",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        ]
        .repeat(8);
        let d = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(deck.iter().copied())
        .unwrap();
        let input: Vec<u8> = deck
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut dense = Vec::new();
        let s1 = Compressor::new(&d).compress_buffer(&input, &mut dense);
        let mut node = Vec::new();
        let s2 = Compressor::new(&d)
            .with_matcher(MatcherKind::NodeTrie)
            .compress_buffer(&input, &mut node);
        assert_eq!(dense, node, "automaton and node trie emit the same bytes");
        assert_eq!(s1, s2);
    }

    #[test]
    fn preprocessing_failures_counted_not_fatal() {
        let d = alphabet_dict();
        // Force preprocess on an identity dictionary.
        let mut c = Compressor::new(&d).with_preprocess(true);
        let mut out = Vec::new();
        // Unclosed ring: preprocessing fails, line still compressed.
        let stats = c.compress_buffer(b"C1CC\nCCO\n", &mut out);
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.preprocess_failures, 1);
        assert_eq!(out, b"C1CC\nCCO\n");
    }

    #[test]
    fn preprocess_changes_bytes_before_encoding() {
        let d = alphabet_dict();
        let mut c = Compressor::new(&d).with_preprocess(true);
        let mut out = Vec::new();
        c.compress_line(b"C1CC1C2CC2", &mut out);
        assert_eq!(out, b"C0CC0C0CC0", "ring IDs renumbered in the archive");
    }

    #[test]
    fn stats_merge_and_ratio() {
        let mut a = CompressStats {
            lines: 1,
            in_bytes: 100,
            out_bytes: 30,
            preprocess_failures: 0,
        };
        let b = CompressStats {
            lines: 2,
            in_bytes: 100,
            out_bytes: 50,
            preprocess_failures: 1,
        };
        a.merge(&b);
        assert_eq!(a.lines, 3);
        assert_eq!(a.in_bytes, 200);
        assert!((a.ratio() - 0.4).abs() < 1e-12);
        assert_eq!(
            CompressStats::default().ratio(),
            1.0,
            "empty input: ratio 1"
        );
    }

    #[test]
    fn empty_lines_are_skipped() {
        let d = alphabet_dict();
        let mut c = Compressor::new(&d).with_preprocess(false);
        let mut out = Vec::new();
        let stats = c.compress_buffer(b"CCO\n\n\nCC\n", &mut out);
        assert_eq!(stats.lines, 2);
        assert_eq!(out, b"CCO\nCC\n");
    }
}
