//! ZSMILES: dictionary-based SMILES compression with readable output,
//! separable lines and a shared dictionary — a Rust reproduction of
//! Accordi et al., *ZSMILES: an approach for efficient SMILES storage for
//! random access in Virtual Screening* (IPPS 2024, arXiv:2404.19391).
//!
//! # Design requirements (paper §I)
//!
//! 1. **Readable output** — compressed bytes are displayable characters;
//!    archives survive `grep`, `head`, text editors and third-party tools.
//! 2. **Separable SMILES / random access** — compressed line *i* is input
//!    molecule *i*; any subset of lines decompresses independently.
//! 3. **Shared dictionary** — one trained [`dict::Dictionary`] compresses
//!    *any* SMILES set, so archives can be cut and recombined freely.
//!
//! # Pipeline
//!
//! ```text
//! .smi ── preprocess (ring-ID renumber) ──► compress (trie + shortest path) ──► .zsmi
//! .zsmi ── decompress (table lookup) ──► postprocess (optional) ──► .smi
//! ```
//!
//! # Architecture: one engine interface, two code widths, one container
//!
//! Two codecs implement the pipeline: the paper's one-byte dictionary
//! ([`dict::Dictionary`]) and the wide-code extension
//! ([`wide::WideDictionary`], two-byte codes behind page prefixes). Both
//! are driven through the [`engine::Engine`] trait — and, for every layer
//! that learns the code width at run time, through its object-safe
//! facade [`engine::DynEngine`] — so every width-independent layer
//! exists once:
//!
//! * [`engine`] — the `Engine` / `LineEncoder` / `LineDecoder` traits,
//!   the dyn-safe [`engine::DynEngine`] facade (boxed worker minting;
//!   [`engine::AnyDictionary`] implements it directly, which makes the
//!   sniffed-at-run-time dictionary *the* engine object), the shared
//!   buffer loops and preprocessing stage, and [`textcomp::LineCodec`]
//!   adapters for the baseline-comparison harness;
//! * [`parallel`] / [`fileio`] — span-parallel execution of any engine,
//!   static or dyn, on a persistent [`parallel::WorkerPool`] (no OS
//!   threads spawned per call), and streaming chunk I/O on top of it;
//! * [`archive`] — the `.zsa` container: magic + header, embedded
//!   dictionary (either flavour), readable compressed payload, line-offset
//!   index and CRC32 footer in one self-describing file with O(1)
//!   `get(line)`; [`Archive`] is the all-in-memory convenience view;
//! * [`source`] / [`cache`] / [`reader`] — the out-of-core read path:
//!   [`source::ArchiveSource`] is a positioned-read byte container
//!   ([`source::FileSource`], zero-syscall [`source::MmapSource`],
//!   [`source::InMemorySource`], metering [`source::CountingSource`],
//!   and [`source::CachedSource`] — a thin adapter over the process-wide
//!   sharded LRU [`cache::BlockCache`] that concurrent readers share;
//!   [`source::AutoSource`] picks mmap or cached file I/O per platform),
//!   and [`reader::ArchiveReader`] opens a
//!   `.zsa` by seeking the footer, loads only header + dictionary +
//!   index, and serves `get` / `get_range` / batched iteration by
//!   reading exactly the payload byte ranges it needs — decks larger
//!   than RAM are first-class;
//! * [`sink`] / [`writer`] — the out-of-core write path, mirroring the
//!   read path: [`sink::ArchiveSink`] is an append-plus-one-patch byte
//!   consumer ([`sink::FileSink`], [`sink::InMemorySink`], metering
//!   [`sink::CountingSink`]) and [`writer::ArchiveWriter`] accepts raw
//!   deck bytes incrementally, compresses bounded batches on the
//!   persistent worker pool, grows the line index in place, and
//!   finalizes header/CRC/footer without ever materializing the payload;
//! * [`serve`] — the long-lived query service: a TCP server holding
//!   [`shard::DeckReader`]s open and answering `get` / `get_range` /
//!   `get_many` / `stats` from many concurrent clients over a
//!   length-prefixed binary protocol, with atomic *generation flips* —
//!   the served deck swaps to a new dataset generation in one pointer
//!   exchange, in-flight requests drain on the old one, and the retired
//!   deck's blocks are forgotten from the block cache;
//! * [`shard`] — sharded multi-file archives: a readable `.zsm` manifest
//!   plus N complete `.zsa` shards ([`shard::ShardedWriter`] cuts by
//!   line/byte budget, [`shard::ShardedReader`] routes global line
//!   numbers across shards, [`shard::DeckReader`] dispatches either
//!   layout behind one read surface);
//! * [`index`] — the exact per-line byte-range table, standalone (`.zsx`
//!   sidecar) or embedded in a container;
//! * [`train`] — corpus-driven dictionary training behind one
//!   [`train::DictBuilder`] trait: seeded reservoir sampling
//!   ([`train::TrainCorpus`]), Apriori substring harvesting, and greedy
//!   selection scored by the *actual* shortest-path encode cost
//!   ([`sp::encode_cost`]); [`train::BaseBuilder`] /
//!   [`train::WideBuilder`] produce [`engine::AnyDictionary`] values
//!   that flow through every layer above unchanged, and
//!   [`train::FsstBuilder`] / [`train::SmazBuilder`] train the
//!   `textcomp` baselines' tables on the same corpus for one-run
//!   comparisons.
//!
//! # Quickstart
//!
//! ```
//! use zsmiles_core::dict::builder::DictBuilder;
//! use zsmiles_core::{Compressor, Decompressor};
//!
//! let training: Vec<&[u8]> = vec![b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"; 8];
//! let dict = DictBuilder { min_count: 2, ..Default::default() }
//!     .train(training.into_iter())
//!     .unwrap();
//!
//! let mut z = Vec::new();
//! Compressor::new(&dict).compress_line(b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2", &mut z);
//! assert!(z.len() < 35, "compressed to {} bytes", z.len());
//!
//! let mut back = Vec::new();
//! Decompressor::new(&dict).decompress_line(&z, &mut back).unwrap();
//! // Decompression returns the pre-processed (ring-ID-renumbered) form,
//! // which is the same molecule in valid SMILES.
//! assert_eq!(back, b"C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0");
//! ```

pub mod archive;
pub mod cache;
pub mod check;
pub mod codec;
pub mod compress;
pub mod decompress;
pub mod dict;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fileio;
pub mod index;
pub mod parallel;
pub mod reader;
pub mod serve;
pub mod shard;
pub mod sink;
pub mod source;
pub mod sp;
pub mod train;
pub mod trie;
pub mod wide;
pub mod writer;

pub use archive::Archive;
pub use cache::{BlockCache, BlockCacheStats};
pub use check::{
    check_deck, quarantine_shards, repair_deck, CheckReport, RepairOutcome, ShardCheck,
};
pub use codec::{Prepopulation, ESCAPE, LINE_SEP};
pub use compress::{CompressStats, Compressor, MatcherKind};
pub use decompress::{DecodeTable, DecompressStats, Decompressor};
pub use dict::builder::{DictBuilder, RankStrategy};
pub use dict::Dictionary;
pub use engine::{
    AnyDictionary, BaseEngine, DictFlavor, DynCodec, DynEngine, Engine, EngineCodec, LineDecoder,
    LineEncoder, WideEngine,
};
pub use error::ZsmilesError;
pub use fault::{Fault, FaultPlan, FaultySink, FaultySource};
pub use fileio::{
    compress_stream, compress_stream_dyn, compress_stream_engine, decompress_stream,
    decompress_stream_dyn, decompress_stream_engine, StreamOptions,
};
pub use index::LineIndex;
pub use parallel::{
    compress_parallel, compress_parallel_dyn, compress_parallel_engine, compress_parallel_wide,
    decompress_parallel, decompress_parallel_dyn, decompress_parallel_engine,
    decompress_parallel_wide, WorkerPool,
};
pub use reader::ArchiveReader;
pub use serve::{
    ClientOptions, HealthStats, QueryClient, ServeHandle, ServeOptions, ServeStats, Server,
};
pub use shard::{
    DeckOptions, DeckReader, QuarantinedShard, ShardManifest, ShardMeta, ShardPolicy,
    ShardedPackInfo, ShardedReader, ShardedWriter,
};
pub use sink::{
    sync_parent_dir, ArchiveSink, AtomicFileSink, CountingSink, DeferredSync, FileSink,
    InMemorySink,
};
pub use source::{
    ArchiveSource, AutoSource, CachedSource, CountingSource, FileSource, InMemorySource, MmapSource,
};
pub use sp::SpAlgorithm;
// The `train::DictBuilder` *trait* is deliberately not re-exported at the
// root: `zsmiles_core::DictBuilder` keeps naming the paper's Algorithm-1
// configuration struct, and the trait is reached as
// `zsmiles_core::train::DictBuilder`.
pub use train::{
    BaseBuilder, FsstBuilder, Selection, SmazBuilder, TrainCorpus, TrainOptions, TrainedModel,
    WideBuilder,
};
pub use trie::{
    CellWord, CodePayload, CompactAutomaton, CompactLayout, CompactView, DenseAutomaton, Matcher,
    Trie,
};
pub use wide::{WideCompressor, WideDecompressor, WideDictBuilder, WideDictionary};
pub use writer::{ArchiveWriter, PackInfo, WriterOptions};
