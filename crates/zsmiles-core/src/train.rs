//! Corpus-driven dictionary training — the subsystem every dictionary
//! producer in the workspace sits behind.
//!
//! The pipeline is the same for every codec, so it is a trait with four
//! stages shared across flavours and baselines:
//!
//! 1. **Corpus sampling** — [`TrainCorpus`] holds the training lines,
//!    built either from an in-memory iterator or by streaming a reader
//!    through seeded reservoir sampling ([`TrainCorpus::sample`]), so a
//!    multi-GB deck trains in bounded memory and a fixed seed makes the
//!    whole run reproducible.
//! 2. **Candidate harvesting** — exact Apriori-pruned frequent-substring
//!    counting (Algorithm 1's counting phase, shared with
//!    [`crate::dict::builder`]).
//! 3. **Selection** — the greedy loop that turns candidates into a
//!    ranked pattern list. The default, [`Selection::CostGuided`], scores
//!    each candidate by the *actual* marginal savings the shortest-path
//!    encoder realizes — [`crate::sp::encode_cost`] over the
//!    [`crate::trie::Matcher`] holding the identity entries plus
//!    everything already selected — rather than raw frequency: a
//!    candidate that the optimal parse would rarely use (because its
//!    occurrences are already covered by better patterns) scores what it
//!    is actually worth. [`Selection::PaperRank`] keeps the paper's
//!    Eq. (1) ranking selectable for fidelity and ablation.
//! 4. **Installation** — the [`DictBuilder`] implementation installs the
//!    ranked list into its code space: [`BaseBuilder`] and
//!    [`WideBuilder`] produce [`AnyDictionary`] values that plug
//!    straight into [`crate::engine::Engine`] / `DynEngine`, archives,
//!    and GPU staging unchanged; [`FsstBuilder`] and [`SmazBuilder`]
//!    train the `textcomp` baselines' tables on the *same corpus*, so a
//!    bench harness can train-and-compare every codec in one run.
//!
//! # Example
//!
//! ```
//! use zsmiles_core::train::{BaseBuilder, DictBuilder, TrainCorpus, TrainOptions};
//!
//! let deck: Vec<&[u8]> = vec![b"COc1cc(C=O)ccc1O"; 32];
//! let corpus = TrainCorpus::from_lines(deck);
//! let builder = BaseBuilder {
//!     opts: TrainOptions { min_count: 2, ..Default::default() },
//! };
//! let dict = builder.train(&corpus).unwrap().into_dictionary().unwrap();
//! let mut z = Vec::new();
//! dict.as_dyn().boxed_encoder().encode_line(b"COc1cc(C=O)ccc1O", &mut z);
//! assert!(z.len() < 16);
//! ```

use crate::codec::Prepopulation;
use crate::dict::builder::{
    harvest_candidates, materialize_corpus, DictBuilder as PaperBuilder, RankStrategy,
};
use crate::dict::Dictionary;
use crate::engine::{AnyDictionary, DictFlavor, DynCodec};
use crate::error::ZsmilesError;
use crate::sp::{encode_cost, SpAlgorithm, SpScratch};
use crate::trie::{CompactAutomaton, CompactLayout, Trie};
use crate::wide::{WideDictionary, MAX_WIDE_ENTRIES, PAGE_BYTES};
use std::io::BufRead;

// ---------------------------------------------------------------------------
// Corpus sampling
// ---------------------------------------------------------------------------

/// xorshift64* step — the deterministic PRNG behind reservoir sampling.
/// Self-contained so a `.dct` trained with a given seed is reproducible
/// from the CLI, the library and the bench harness alike.
#[inline]
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The sampled training corpus every [`DictBuilder`] trains on: raw
/// SMILES lines (no newlines, empties dropped). Pre-processing is a
/// builder decision, not a corpus property, so lines are stored verbatim.
#[derive(Debug, Clone, Default)]
pub struct TrainCorpus {
    lines: Vec<Vec<u8>>,
    /// Non-empty lines offered (≥ `lines.len()` when sampling kicked in).
    seen: u64,
}

impl TrainCorpus {
    /// Keep every offered line (small or already-sampled decks).
    pub fn from_lines<I, L>(lines: I) -> TrainCorpus
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let lines: Vec<Vec<u8>> = lines
            .into_iter()
            .map(|l| l.as_ref().to_vec())
            .filter(|l| !l.is_empty())
            .collect();
        let seen = lines.len() as u64;
        TrainCorpus { lines, seen }
    }

    /// Stream newline-separated lines from `r`, keeping a uniform sample
    /// of at most `capacity` lines (Algorithm R, seeded — the same seed
    /// over the same input reproduces the same sample byte for byte).
    /// `capacity == 0` keeps everything. Memory is bounded by the
    /// reservoir, never the deck.
    pub fn sample<R: BufRead>(r: R, capacity: usize, seed: u64) -> std::io::Result<TrainCorpus> {
        // SplitMix64 seed expansion: distinct seeds (even adjacent ones)
        // land on distinct, well-mixed non-zero xorshift states.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = (state ^ (state >> 31)) | 1;
        let mut lines: Vec<Vec<u8>> = Vec::new();
        let mut seen = 0u64;
        for line in r.split(b'\n') {
            let mut line = line?;
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.is_empty() {
                continue;
            }
            seen += 1;
            if capacity == 0 || lines.len() < capacity {
                lines.push(line);
            } else {
                // Replace a random reservoir slot with probability k/seen.
                let j = xorshift64(&mut state) % seen;
                if (j as usize) < capacity {
                    lines[j as usize] = line;
                }
            }
        }
        Ok(TrainCorpus { lines, seen })
    }

    /// Sampled lines, in reservoir order.
    pub fn lines(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.lines.iter().map(|l| l.as_slice())
    }

    /// Number of lines held.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Non-empty lines offered before sampling.
    pub fn seen_lines(&self) -> u64 {
        self.seen
    }

    /// Payload bytes held (newlines excluded).
    pub fn payload_bytes(&self) -> usize {
        self.lines.iter().map(|l| l.len()).sum()
    }

    /// The held lines as one newline-separated buffer (the shape the
    /// `textcomp` table trainers consume).
    pub fn joined(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.payload_bytes() + self.len());
        for l in &self.lines {
            buf.extend_from_slice(l);
            buf.push(b'\n');
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// How the greedy selection loop scores candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Score each candidate by the marginal drop in the *actual*
    /// shortest-path encode cost of the sample when the candidate joins
    /// the already-selected set (lazy greedy; see the module docs).
    #[default]
    CostGuided,
    /// The paper's Algorithm 1 ranking (Eq. (1) and its ablation
    /// variants), delegated to [`crate::dict::builder::DictBuilder`].
    PaperRank(RankStrategy),
}

impl Selection {
    pub fn name(&self) -> &'static str {
        match self {
            Selection::CostGuided => "cost",
            Selection::PaperRank(_) => "paper",
        }
    }
}

/// Shared training configuration for the ZSMILES builders.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    pub lmin: usize,
    pub lmax: usize,
    pub prepopulation: Prepopulation,
    /// Apply ring-ID pre-processing to training lines (and record it in
    /// the dictionary so encoders do the same).
    pub preprocess: bool,
    /// Cap on selected patterns; `None` fills the flavour's code space.
    pub max_symbols: Option<usize>,
    /// Minimum occurrences for a substring to be harvested at all.
    pub min_count: u32,
    /// Candidates kept for the selection loop (by static estimate).
    pub max_candidates: usize,
    /// Cost-guided selection: exact cost evaluations per pick before the
    /// best already-evaluated candidate is taken (bounds worst-case
    /// training time; larger is closer to true greedy).
    pub beam: usize,
    /// Reservoir capacity for [`TrainCorpus::sample`]-based entry points
    /// (CLI, `pack --train`); `0` keeps every line.
    pub sample_lines: usize,
    /// Reservoir seed — fixes the sample, and with it the whole training
    /// run.
    pub seed: u64,
    /// Candidate scoring.
    pub selection: Selection,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            lmin: 2,
            lmax: 12,
            prepopulation: Prepopulation::SmilesAlphabet,
            preprocess: true,
            max_symbols: None,
            min_count: 4,
            max_candidates: 30_000,
            beam: 64,
            sample_lines: 4096,
            seed: 0x5EED5,
            selection: Selection::CostGuided,
        }
    }
}

// ---------------------------------------------------------------------------
// The trait and its output
// ---------------------------------------------------------------------------

/// What a training run produces: a ZSMILES dictionary (either flavour —
/// flows through `Engine`, archives and GPU staging unchanged) or a
/// trained baseline table (bench comparison only).
#[derive(Debug, Clone)]
pub enum TrainedModel {
    Zsmiles(AnyDictionary),
    Fsst(textcomp::fsst::Fsst),
    Smaz(textcomp::smaz::Smaz),
}

impl TrainedModel {
    /// Display name (bench axis labels).
    pub fn name(&self) -> &'static str {
        match self {
            TrainedModel::Zsmiles(d) => d.as_dyn().name(),
            TrainedModel::Fsst(_) => "FSST",
            TrainedModel::Smaz(_) => "SMAZ",
        }
    }

    /// The ZSMILES dictionary, if this model is one.
    pub fn as_dictionary(&self) -> Option<&AnyDictionary> {
        match self {
            TrainedModel::Zsmiles(d) => Some(d),
            _ => None,
        }
    }

    /// Unwrap into the ZSMILES dictionary, if this model is one.
    pub fn into_dictionary(self) -> Option<AnyDictionary> {
        match self {
            TrainedModel::Zsmiles(d) => Some(d),
            _ => None,
        }
    }

    /// Every trained model compresses through [`textcomp::LineCodec`] —
    /// the uniform per-line interface the comparison harness drives, so
    /// one loop ratios every codec on the corpus they all trained on.
    pub fn line_codec(&self) -> Box<dyn textcomp::LineCodec + '_> {
        match self {
            TrainedModel::Zsmiles(d) => Box::new(DynCodec::new(d.as_dyn())),
            TrainedModel::Fsst(t) => Box::new(t.clone()),
            TrainedModel::Smaz(t) => Box::new(t.clone()),
        }
    }
}

/// A dictionary producer: one corpus in, one trained model out. The
/// workspace's four producers — both ZSMILES flavours and the two
/// trainable `textcomp` baselines — implement it, which is what lets a
/// harness train and compare every codec on one corpus in one run.
pub trait DictBuilder {
    /// Builder name (CLI `--flavor` value, bench axis label).
    fn name(&self) -> &'static str;

    /// The ZSMILES flavour produced, if the output is a ZSMILES
    /// dictionary.
    fn flavor(&self) -> Option<DictFlavor>;

    /// Train on the sampled corpus.
    fn train(&self, corpus: &TrainCorpus) -> Result<TrainedModel, ZsmilesError>;
}

// ---------------------------------------------------------------------------
// Cost-guided greedy selection
// ---------------------------------------------------------------------------

/// A candidate in the lazy-greedy loop.
struct Cand {
    pat: Vec<u8>,
    /// Current score: the exact marginal gain if `fresh`, else a stale
    /// upper estimate from a previous round (gains only shrink as the
    /// selected set grows).
    score: u64,
    fresh: bool,
    /// Corpus lines containing `pat` — a function of (pattern, corpus)
    /// only, so it is scanned once on the candidate's first exact
    /// evaluation and reused by every later one (and by the baseline
    /// update when the candidate is selected).
    hits: Option<Vec<u32>>,
}

/// Below this many cached hit lines, compiling a [`CompactAutomaton`]
/// for a probe trie costs more than the node-trie walk it would save;
/// above it, the CELF re-scoring loop is encoder-bound and the compiled
/// walk wins.
const COMPACT_EVAL_THRESHOLD: usize = 64;

/// [`encode_cost`] against a compiled compact automaton, with the layout
/// branch hoisted out of the per-line call.
fn compact_cost(ca: &CompactAutomaton, line: &[u8], scratch: &mut SpScratch) -> usize {
    match ca.view() {
        CompactLayout::Narrow(v) => encode_cost(&v, line, SpAlgorithm::BackwardDp, scratch),
        CompactLayout::Wide(v) => encode_cost(&v, line, SpAlgorithm::BackwardDp, scratch),
    }
}

/// Exact marginal gain of `cand` given the current matcher and per-line
/// baselines: only lines containing the pattern can change, so the DP
/// re-runs on that (cached) subset alone.
fn eval_gain(
    lines: &[&[u8]],
    trie: &Trie,
    baseline: &[u64],
    scratch: &mut SpScratch,
    cand: &mut Cand,
) -> u64 {
    let hits = cand.hits.get_or_insert_with(|| {
        let pat = cand.pat.as_slice();
        lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() >= pat.len() && l.windows(pat.len()).any(|w| w == pat))
            .map(|(i, _)| i as u32)
            .collect()
    });
    if hits.is_empty() {
        return 0;
    }
    let mut probe = trie.clone();
    probe.insert(&cand.pat, 0);
    let compact = (hits.len() >= COMPACT_EVAL_THRESHOLD).then(|| CompactAutomaton::compile(&probe));
    let mut gain = 0u64;
    for &i in hits.iter() {
        let line = lines[i as usize];
        let with = match &compact {
            Some(ca) => compact_cost(ca, line, scratch),
            None => encode_cost(&probe, line, SpAlgorithm::BackwardDp, scratch),
        } as u64;
        gain += baseline[i as usize].saturating_sub(with);
    }
    gain
}

/// Greedy pattern selection scored by the actual shortest-path encode
/// cost: in each round the candidate whose installation shrinks the
/// sample's optimal encoding the most is picked, with
/// [`crate::sp::encode_cost`] as the judge and the identity entries plus
/// everything already selected as the matcher it runs against.
///
/// Lazy evaluation (CELF-style) keeps this tractable: candidates carry a
/// stale score from their last exact evaluation (initially the static
/// `occ × (len − 1)` estimate), the round re-evaluates the top candidate
/// until a freshly-scored one stays on top, and `beam` bounds the exact
/// evaluations per pick.
fn cost_guided_select(
    lines: &[&[u8]],
    candidates: Vec<(Vec<u8>, u32)>,
    prepopulation: Prepopulation,
    budget: usize,
    beam: usize,
) -> Vec<Vec<u8>> {
    let beam = beam.max(1);
    // The matcher the DP runs against: identity entries now, selected
    // patterns as they accumulate. Code values are irrelevant — only the
    // path *cost* is read.
    let mut trie: Trie = Trie::new();
    for b in prepopulation.identity_bytes() {
        trie.insert(&[b], b);
    }
    let mut scratch = SpScratch::new();
    // The full-corpus sweep always amortizes a compile.
    let initial = CompactAutomaton::compile(&trie);
    let mut baseline: Vec<u64> = lines
        .iter()
        .map(|l| compact_cost(&initial, l, &mut scratch) as u64)
        .collect();
    drop(initial);

    let mut cands: Vec<Cand> = candidates
        .into_iter()
        .map(|(pat, occ)| {
            // Static estimate: each occurrence saves ~(len − 1) bytes when
            // the bytes would otherwise cost one code each; a matched
            // single byte still beats a two-byte escape.
            let est = if pat.len() == 1 {
                occ as u64
            } else {
                occ as u64 * (pat.len() as u64 - 1)
            };
            Cand {
                pat,
                score: est,
                fresh: false,
                hits: None,
            }
        })
        .collect();

    // Deterministic candidate order: score, then longer pattern, then
    // lexicographically smaller — a total order (patterns are distinct).
    let better = |a: &Cand, b: &Cand| -> bool {
        a.score > b.score
            || (a.score == b.score
                && (a.pat.len() > b.pat.len() || (a.pat.len() == b.pat.len() && a.pat < b.pat)))
    };

    let mut selected: Vec<Vec<u8>> = Vec::with_capacity(budget.min(cands.len()));
    while selected.len() < budget && !cands.is_empty() {
        let mut evals = 0usize;
        let pick = loop {
            // Argmax over all candidates — or over the already-evaluated
            // ones once this pick's evaluation budget is spent.
            let frozen = evals >= beam;
            let mut best: Option<usize> = None;
            for (i, c) in cands.iter().enumerate() {
                if frozen && !c.fresh {
                    continue;
                }
                if best.is_none_or(|b| better(c, &cands[b])) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break None };
            if cands[i].score == 0 {
                break None; // nothing left can save a byte
            }
            if cands[i].fresh {
                break Some(i);
            }
            let gain = eval_gain(lines, &trie, &baseline, &mut scratch, &mut cands[i]);
            cands[i].score = gain;
            cands[i].fresh = true;
            evals += 1;
        };
        let Some(idx) = pick else { break };
        let chosen = cands.swap_remove(idx);
        trie.insert(&chosen.pat, 0);
        // A picked candidate is always fresh, so its hit set is cached.
        let hits = chosen.hits.as_deref().unwrap_or(&[]);
        let compact =
            (hits.len() >= COMPACT_EVAL_THRESHOLD).then(|| CompactAutomaton::compile(&trie));
        for &li in hits {
            let line = lines[li as usize];
            baseline[li as usize] = match &compact {
                Some(ca) => compact_cost(ca, line, &mut scratch),
                None => encode_cost(&trie, line, SpAlgorithm::BackwardDp, &mut scratch),
            } as u64;
        }
        selected.push(chosen.pat);
        // Every remaining score is now a stale (upper) estimate.
        for c in &mut cands {
            c.fresh = false;
        }
    }
    selected
}

/// Shared front half of both ZSMILES builders: materialize (preprocess),
/// harvest, select — returns the ranked pattern list ready for
/// installation into either code space.
fn select_patterns(
    corpus: &TrainCorpus,
    opts: &TrainOptions,
    budget: usize,
) -> Result<Vec<Vec<u8>>, ZsmilesError> {
    if opts.lmin < 1 || opts.lmax < opts.lmin || opts.lmax > crate::dict::MAX_PATTERN_LEN {
        return Err(ZsmilesError::BadLengthBounds {
            lmin: opts.lmin,
            lmax: opts.lmax,
        });
    }
    let (flat, n_lines) = materialize_corpus(corpus.lines(), opts.preprocess);
    if n_lines == 0 {
        return Err(ZsmilesError::EmptyTrainingSet);
    }
    let mut candidates = harvest_candidates(&flat, opts.lmin, opts.lmax, opts.min_count);
    if candidates.is_empty() {
        return Err(ZsmilesError::EmptyTrainingSet);
    }
    // Keep only the strongest candidates for the selection loop
    // (deterministic order: estimate, then longer, then lexicographic).
    candidates.sort_unstable_by(|a, b| {
        let ra = a.1 as u64 * a.0.len() as u64;
        let rb = b.1 as u64 * b.0.len() as u64;
        rb.cmp(&ra)
            .then(b.0.len().cmp(&a.0.len()))
            .then_with(|| a.0.cmp(&b.0))
    });
    candidates.truncate(opts.max_candidates);

    let lines: Vec<&[u8]> = flat
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    Ok(cost_guided_select(
        &lines,
        candidates,
        opts.prepopulation,
        budget,
        opts.beam,
    ))
}

// ---------------------------------------------------------------------------
// The four builders
// ---------------------------------------------------------------------------

/// The ranked pattern list for a `budget`-pattern dictionary, via
/// whichever selection `opts` names — the one dispatch both ZSMILES
/// builders share, so the two flavours cannot drift apart.
fn ranked_patterns(
    corpus: &TrainCorpus,
    opts: &TrainOptions,
    budget: usize,
) -> Result<Vec<Vec<u8>>, ZsmilesError> {
    match opts.selection {
        Selection::CostGuided => select_patterns(corpus, opts, budget),
        Selection::PaperRank(rank) => PaperBuilder {
            lmin: opts.lmin,
            lmax: opts.lmax,
            prepopulation: opts.prepopulation,
            rank,
            preprocess: opts.preprocess,
            dict_size: Some(budget),
            max_candidates: opts.max_candidates,
            min_count: opts.min_count,
            ..PaperBuilder::default()
        }
        .train_patterns(corpus.lines()),
    }
}

/// Trains the paper's one-byte dictionary.
#[derive(Debug, Clone, Default)]
pub struct BaseBuilder {
    pub opts: TrainOptions,
}

impl DictBuilder for BaseBuilder {
    fn name(&self) -> &'static str {
        "base"
    }

    fn flavor(&self) -> Option<DictFlavor> {
        Some(DictFlavor::Base)
    }

    fn train(&self, corpus: &TrainCorpus) -> Result<TrainedModel, ZsmilesError> {
        let o = &self.opts;
        let free = o.prepopulation.free_code_count();
        let budget = o.max_symbols.unwrap_or(free).min(free);
        let patterns = ranked_patterns(corpus, o, budget)?;
        let dict =
            Dictionary::from_patterns(o.prepopulation, patterns, o.lmin, o.lmax, o.preprocess)?;
        Ok(TrainedModel::Zsmiles(AnyDictionary::Base(Box::new(dict))))
    }
}

/// Trains the wide-code extension: the same selection machinery asked for
/// `214 − identity + wide_size` ranked patterns, installed across both
/// code widths. The cost-guided score charges every code one byte, which
/// slightly flatters patterns that land in the two-byte wide region —
/// the wide DP still emits the optimal stream for whatever is installed.
#[derive(Debug, Clone)]
pub struct WideBuilder {
    pub opts: TrainOptions,
    /// Two-byte pattern slots to fill.
    pub wide_size: usize,
}

impl Default for WideBuilder {
    fn default() -> Self {
        WideBuilder {
            opts: TrainOptions::default(),
            wide_size: 512,
        }
    }
}

impl DictBuilder for WideBuilder {
    fn name(&self) -> &'static str {
        "wide"
    }

    fn flavor(&self) -> Option<DictFlavor> {
        Some(DictFlavor::Wide)
    }

    fn train(&self, corpus: &TrainCorpus) -> Result<TrainedModel, ZsmilesError> {
        let o = &self.opts;
        let wide_size = self.wide_size.min(MAX_WIDE_ENTRIES);
        let free_base = o
            .prepopulation
            .free_code_count()
            .saturating_sub(PAGE_BYTES.len());
        let cap = free_base + wide_size;
        let budget = o.max_symbols.unwrap_or(cap).min(cap);
        let patterns = ranked_patterns(corpus, o, budget)?;
        let dict = WideDictionary::from_patterns(
            o.prepopulation,
            patterns,
            o.lmin,
            o.lmax,
            o.preprocess,
            wide_size,
        )?;
        Ok(TrainedModel::Zsmiles(AnyDictionary::Wide(Box::new(dict))))
    }
}

/// Trains the FSST baseline's symbol table on the shared corpus.
#[derive(Debug, Clone)]
pub struct FsstBuilder {
    /// Symbol budget (≤ `textcomp::fsst::MAX_SYMBOLS`).
    pub max_symbols: usize,
}

impl Default for FsstBuilder {
    fn default() -> Self {
        FsstBuilder {
            max_symbols: textcomp::fsst::MAX_SYMBOLS,
        }
    }
}

impl DictBuilder for FsstBuilder {
    fn name(&self) -> &'static str {
        "fsst"
    }

    fn flavor(&self) -> Option<DictFlavor> {
        None
    }

    fn train(&self, corpus: &TrainCorpus) -> Result<TrainedModel, ZsmilesError> {
        if corpus.is_empty() {
            return Err(ZsmilesError::EmptyTrainingSet);
        }
        Ok(TrainedModel::Fsst(textcomp::fsst::Fsst::train_with(
            &corpus.joined(),
            self.max_symbols,
        )))
    }
}

/// Trains a SMAZ-style codebook on the shared corpus.
#[derive(Debug, Clone)]
pub struct SmazBuilder {
    /// Codebook budget (≤ `textcomp::smaz::MAX_ENTRIES`).
    pub max_entries: usize,
}

impl Default for SmazBuilder {
    fn default() -> Self {
        SmazBuilder {
            max_entries: textcomp::smaz::MAX_ENTRIES,
        }
    }
}

impl DictBuilder for SmazBuilder {
    fn name(&self) -> &'static str {
        "smaz"
    }

    fn flavor(&self) -> Option<DictFlavor> {
        None
    }

    fn train(&self, corpus: &TrainCorpus) -> Result<TrainedModel, ZsmilesError> {
        if corpus.is_empty() {
            return Err(ZsmilesError::EmptyTrainingSet);
        }
        Ok(TrainedModel::Smaz(textcomp::smaz::Smaz::train_with(
            &corpus.joined(),
            self.max_entries,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deck() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 6] = [
            b"COc1cc(C=O)ccc1O",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CN1C=NC2=C1C(=O)N(C(=O)N2C)C",
            b"OC(=O)c1ccccc1Nc1ccnc2cc(Cl)ccc12",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(120).collect()
    }

    fn opts() -> TrainOptions {
        TrainOptions {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let input = b"CCO\nCNC\n\nCCC\n";
        let c = TrainCorpus::sample(&input[..], 10, 7).unwrap();
        assert_eq!(c.len(), 3, "empty line dropped");
        assert_eq!(c.seen_lines(), 3);
        let lines: Vec<&[u8]> = c.lines().collect();
        assert_eq!(lines, vec![b"CCO".as_slice(), b"CNC", b"CCC"]);
        assert_eq!(c.joined(), b"CCO\nCNC\nCCC\n");
    }

    #[test]
    fn reservoir_is_deterministic_and_uniformish() {
        let mut input = Vec::new();
        for i in 0..1000u32 {
            input.extend_from_slice(format!("C{i}\n").as_bytes());
        }
        let a = TrainCorpus::sample(&input[..], 64, 42).unwrap();
        let b = TrainCorpus::sample(&input[..], 64, 42).unwrap();
        assert_eq!(a.lines, b.lines, "same seed, same sample");
        assert_eq!(a.len(), 64);
        assert_eq!(a.seen_lines(), 1000);
        let c = TrainCorpus::sample(&input[..], 64, 43).unwrap();
        assert_ne!(a.lines, c.lines, "different seed, different sample");
        // Sampling reaches past the first `capacity` lines.
        assert!(
            a.lines().any(|l| l.len() > 3),
            "tail lines (3-digit ids) appear in the sample"
        );
    }

    #[test]
    fn base_builder_round_trips_and_compresses() {
        let corpus = TrainCorpus::from_lines(deck());
        let model = BaseBuilder { opts: opts() }.train(&corpus).unwrap();
        assert_eq!(model.name(), "ZSMILES");
        let dict = model.as_dictionary().unwrap();
        assert_eq!(dict.flavor(), DictFlavor::Base);
        let mut enc = dict.as_dyn().boxed_encoder();
        let mut dec = dict.as_dyn().boxed_decoder();
        let mut total_in = 0usize;
        let mut total_out = 0usize;
        for line in deck() {
            let mut z = Vec::new();
            let (n, _) = enc.encode_line(line, &mut z);
            let mut back = Vec::new();
            dec.decode_line(&z, &mut back).unwrap();
            assert_eq!(back, line);
            total_in += line.len();
            total_out += n;
        }
        assert!(
            (total_out as f64) < total_in as f64 * 0.6,
            "cost-guided dictionary compresses its corpus: {total_out}/{total_in}"
        );
    }

    #[test]
    fn wide_builder_produces_wide_dictionaries() {
        let corpus = TrainCorpus::from_lines(deck());
        let b = WideBuilder {
            opts: opts(),
            wide_size: 64,
        };
        assert_eq!(b.flavor(), Some(DictFlavor::Wide));
        let dict = b.train(&corpus).unwrap().into_dictionary().unwrap();
        assert_eq!(dict.flavor(), DictFlavor::Wide);
        let mut enc = dict.as_dyn().boxed_encoder();
        let mut dec = dict.as_dyn().boxed_decoder();
        for line in deck().iter().take(12) {
            let mut z = Vec::new();
            enc.encode_line(line, &mut z);
            let mut back = Vec::new();
            dec.decode_line(&z, &mut back).unwrap();
            assert_eq!(&back, line);
        }
    }

    #[test]
    fn max_symbols_caps_selection() {
        let corpus = TrainCorpus::from_lines(deck());
        let model = BaseBuilder {
            opts: TrainOptions {
                max_symbols: Some(5),
                ..opts()
            },
        }
        .train(&corpus)
        .unwrap();
        let Some(AnyDictionary::Base(d)) = model.as_dictionary().map(|d| match d {
            AnyDictionary::Base(b) => AnyDictionary::Base(b.clone()),
            AnyDictionary::Wide(w) => AnyDictionary::Wide(w.clone()),
        }) else {
            panic!("base model expected");
        };
        assert!(d.pattern_entries().count() <= 5);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = TrainCorpus::from_lines(deck());
        let mut bufs = Vec::new();
        for _ in 0..2 {
            let model = BaseBuilder { opts: opts() }.train(&corpus).unwrap();
            let mut buf = Vec::new();
            model.as_dictionary().unwrap().write(&mut buf).unwrap();
            bufs.push(buf);
        }
        assert_eq!(bufs[0], bufs[1]);
    }

    #[test]
    fn cost_guided_is_no_worse_than_paper_rank_on_its_corpus() {
        let corpus = TrainCorpus::from_lines(deck());
        let ratio_of = |selection: Selection| {
            let model = BaseBuilder {
                opts: TrainOptions {
                    selection,
                    ..opts()
                },
            }
            .train(&corpus)
            .unwrap();
            let dict = model.into_dictionary().unwrap();
            let mut enc = dict.as_dyn().boxed_encoder();
            let (mut inb, mut outb) = (0usize, 0usize);
            for line in deck() {
                let mut z = Vec::new();
                let (n, _) = enc.encode_line(line, &mut z);
                inb += line.len();
                outb += n;
            }
            outb as f64 / inb as f64
        };
        let cost = ratio_of(Selection::CostGuided);
        let paper = ratio_of(Selection::PaperRank(RankStrategy::PaperOverlap));
        assert!(
            cost <= paper + 1e-9,
            "cost-guided {cost:.4} should not lose to paper rank {paper:.4} on the training corpus"
        );
    }

    #[test]
    fn paper_rank_selection_matches_algorithm_one() {
        // The PaperRank path must produce the same dictionary as driving
        // the Algorithm-1 builder directly — it is the same machinery.
        let corpus = TrainCorpus::from_lines(deck());
        let via_trait = BaseBuilder {
            opts: TrainOptions {
                selection: Selection::PaperRank(RankStrategy::PaperOverlap),
                ..opts()
            },
        }
        .train(&corpus)
        .unwrap();
        let direct = PaperBuilder {
            min_count: 2,
            preprocess: false,
            lmax: 12,
            dict_size: Some(Prepopulation::SmilesAlphabet.free_code_count()),
            ..PaperBuilder::default()
        }
        .train(corpus.lines())
        .unwrap();
        let mut a = Vec::new();
        via_trait.as_dictionary().unwrap().write(&mut a).unwrap();
        let mut b = Vec::new();
        crate::dict::format::write_dict(&direct, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_builders_train_and_round_trip() {
        let corpus = TrainCorpus::from_lines(deck());
        for builder in [
            Box::new(FsstBuilder::default()) as Box<dyn DictBuilder>,
            Box::new(SmazBuilder::default()),
        ] {
            assert!(builder.flavor().is_none());
            let model = builder.train(&corpus).unwrap();
            let codec = model.line_codec();
            for line in deck().iter().take(6) {
                let mut z = Vec::new();
                codec.compress_line(line, &mut z);
                let mut back = Vec::new();
                codec.decompress_line(&z, &mut back).unwrap();
                assert_eq!(&back, line, "{}", model.name());
            }
        }
    }

    #[test]
    fn every_builder_trains_on_one_corpus_in_one_run() {
        // The tentpole property: one corpus, every codec, one loop.
        let corpus = TrainCorpus::from_lines(deck());
        let builders: Vec<Box<dyn DictBuilder>> = vec![
            Box::new(BaseBuilder { opts: opts() }),
            Box::new(WideBuilder {
                opts: opts(),
                wide_size: 32,
            }),
            Box::new(FsstBuilder::default()),
            Box::new(SmazBuilder::default()),
        ];
        let input = corpus.joined();
        for b in &builders {
            let model = b.train(&corpus).unwrap();
            let codec = model.line_codec();
            let (out, inp) = textcomp::line_codec_ratio(codec.as_ref(), &input);
            assert!(
                out < inp + codec.overhead_bytes() + 1,
                "{} ratio sane",
                b.name()
            );
        }
    }

    #[test]
    fn empty_corpus_errors() {
        let corpus = TrainCorpus::from_lines(std::iter::empty::<&[u8]>());
        for builder in [
            Box::new(BaseBuilder { opts: opts() }) as Box<dyn DictBuilder>,
            Box::new(WideBuilder {
                opts: opts(),
                wide_size: 8,
            }),
            Box::new(FsstBuilder::default()),
            Box::new(SmazBuilder::default()),
        ] {
            assert!(
                matches!(builder.train(&corpus), Err(ZsmilesError::EmptyTrainingSet)),
                "{}",
                builder.name()
            );
        }
    }

    #[test]
    fn cost_guided_skips_covered_duplicates() {
        // "CCO" repeated: once it is selected, "CC"/"CO" have zero marginal
        // gain under the actual encode cost and must not burn budget.
        let lines: Vec<&[u8]> = vec![b"CCOCCOCCO"; 20];
        let corpus = TrainCorpus::from_lines(lines);
        let model = BaseBuilder {
            opts: TrainOptions {
                max_symbols: Some(8),
                ..opts()
            },
        }
        .train(&corpus)
        .unwrap();
        let dict = model.into_dictionary().unwrap();
        let mut buf = Vec::new();
        dict.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let pats: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split('\t').nth(1))
            .collect();
        assert!(
            pats.contains(&"CCOCCOCCO") || pats.contains(&"CCO"),
            "a covering pattern selected: {pats:?}"
        );
        // No pattern in the list is a substring another fully covers with
        // zero residual value — in particular not both "CCO" and "CC"+"CO".
        assert!(
            !(pats.contains(&"CC") && pats.contains(&"CO") && pats.contains(&"CCO")),
            "zero-gain fragments skipped: {pats:?}"
        );
    }
}
