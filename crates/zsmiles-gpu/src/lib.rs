//! ZSMILES GPU kernels (paper §IV-E) on the `simt` simulator.
//!
//! One warp-sized block per SMILES, exactly as the paper configures its
//! CUDA grid. The kernels are warp-synchronous translations of the
//! described algorithm — per-lane dictionary matching, a backward
//! shortest-path scan, and a prefix-sum-coordinated scatter for
//! decompression — and they produce **byte-identical** output to the
//! serial CPU engine (pinned by tests), so every correctness property of
//! `zsmiles-core` transfers.
//!
//! Timing comes from the simulator's cost model: run a deck through
//! [`pipeline::compress`], hand the [`simt::CostReport`] to
//! [`simt::DeviceProfile::pipeline_time`], and compare against the
//! measured serial engine — that is how the Fig. 5 harness regenerates the
//! paper's ≈7×/≈2× speedup shape.

pub mod device_dict;
pub mod kernels;
pub mod pipeline;

pub use device_dict::DeviceDict;
pub use kernels::{compress_block, decompress_block, MAX_LINE};
pub use pipeline::{compress, compress_any, decompress, decompress_any, GpuOptions, GpuRun};
