//! Device-resident dictionary layout.
//!
//! The paper's CUDA kernels iterate over dictionary *entries* (not a trie):
//! "for each dictionary element, the thread checks if the correspondent
//! substrings can be matched in the input". That favors a flat,
//! broadcast-friendly layout: concatenated pattern bytes plus per-entry
//! (offset, length, code) arrays for matching, and a fixed 256-slot
//! expansion table for decompression.

use zsmiles_core::dict::{Dictionary, MAX_PATTERN_LEN};
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::ZsmilesError;

/// Flattened dictionary as it would live in device constant/global memory.
#[derive(Debug, Clone)]
pub struct DeviceDict {
    /// Concatenated pattern bytes of all entries.
    pub pattern_bytes: Vec<u8>,
    /// Per-entry byte offset into `pattern_bytes`.
    pub offsets: Vec<u32>,
    /// Per-entry pattern length.
    pub lens: Vec<u8>,
    /// Per-entry output code.
    pub codes: Vec<u8>,
    /// Decompression table: `expand[code]` = (len, bytes).
    pub expand_len: [u8; 256],
    pub expand_bytes: [[u8; MAX_PATTERN_LEN]; 256],
    /// Longest pattern (the kernel's match-loop bound — the paper's Lmax).
    pub lmax: usize,
}

impl DeviceDict {
    pub fn from_dictionary(dict: &Dictionary) -> DeviceDict {
        let mut pattern_bytes = Vec::new();
        let mut offsets = Vec::new();
        let mut lens = Vec::new();
        let mut codes = Vec::new();
        let mut expand_len = [0u8; 256];
        let mut expand_bytes = [[0u8; MAX_PATTERN_LEN]; 256];
        let mut lmax = 0usize;
        for (code, pat) in dict.all_entries() {
            offsets.push(pattern_bytes.len() as u32);
            lens.push(pat.len() as u8);
            codes.push(code);
            pattern_bytes.extend_from_slice(pat);
            lmax = lmax.max(pat.len());
            expand_len[code as usize] = pat.len() as u8;
            expand_bytes[code as usize][..pat.len()].copy_from_slice(pat);
        }
        DeviceDict {
            pattern_bytes,
            offsets,
            lens,
            codes,
            expand_len,
            expand_bytes,
            lmax,
        }
    }

    /// Stage a run-time-flavoured dictionary for device upload — the GPU
    /// layer's entry point for archives and CLI-loaded dictionaries,
    /// sharing [`AnyDictionary`]'s single flavour dispatch instead of
    /// keeping a private copy of the match. Wide dictionaries do not fit
    /// the kernels' 256-slot one-byte expansion table, so staging one is
    /// reported as unsupported rather than mis-laid-out.
    pub fn stage(dict: &AnyDictionary) -> Result<DeviceDict, ZsmilesError> {
        match dict {
            AnyDictionary::Base(d) => Ok(DeviceDict::from_dictionary(d)),
            AnyDictionary::Wide(_) => Err(ZsmilesError::Unsupported {
                what: format!(
                    "device staging for the {} dictionary flavour \
                     (kernels use a 256-slot one-byte expansion table)",
                    dict.flavor().name()
                ),
            }),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Pattern bytes of entry `e`.
    pub fn pattern(&self, e: usize) -> &[u8] {
        let start = self.offsets[e] as usize;
        &self.pattern_bytes[start..start + self.lens[e] as usize]
    }

    /// Device memory footprint in bytes (tables shipped once per launch).
    pub fn footprint(&self) -> usize {
        self.pattern_bytes.len()
            + self.offsets.len() * 4
            + self.lens.len()
            + self.codes.len()
            + 256 * (1 + MAX_PATTERN_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsmiles_core::{DictBuilder, Prepopulation};

    fn dict() -> Dictionary {
        let corpus: Vec<&[u8]> = vec![b"COc1cc(C=O)ccc1O"; 8];
        DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(corpus)
        .unwrap()
    }

    #[test]
    fn flattening_preserves_entries() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        assert_eq!(dd.len(), d.len());
        for (e, (code, pat)) in d.all_entries().enumerate() {
            assert_eq!(dd.pattern(e), pat);
            assert_eq!(dd.codes[e], code);
            assert_eq!(dd.expand_len[code as usize] as usize, pat.len());
            assert_eq!(&dd.expand_bytes[code as usize][..pat.len()], pat);
        }
        assert!(dd.lmax >= 2);
        assert!(dd.footprint() > 0);
    }

    #[test]
    fn identity_dictionary_flattens() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let dd = DeviceDict::from_dictionary(&d);
        assert_eq!(dd.len(), 78);
        assert_eq!(dd.lmax, 1);
        assert_eq!(dd.expand_len[b'C' as usize], 1);
        assert_eq!(dd.expand_bytes[b'C' as usize][0], b'C');
    }
}
