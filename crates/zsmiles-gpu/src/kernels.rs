//! The paper's CUDA kernels (§IV-E), written warp-synchronously against
//! the `simt` simulator. One 32-lane block per SMILES line.
//!
//! Compression (three phases, mirroring the paper's description):
//!
//! 1. **Match** — the line is staged into shared memory with coalesced
//!    loads; then, *for each dictionary element*, each lane checks whether
//!    that entry matches at its character position, building the edge
//!    table of the position DAG.
//! 2. **Backward shortest-path scan** — positions are settled from the end
//!    of the line toward the start; for one position, the ≤ Lmax+1
//!    candidate edges (including the escape edge) are evaluated by
//!    separate lanes and combined with a warp min-reduction whose packed
//!    key reproduces the CPU engine's exact tie-breaking, which is what
//!    makes GPU and CPU outputs byte-identical.
//! 3. **Emit** — the chosen path is walked, code bytes staged in shared
//!    memory, and the result written out in coalesced 32-byte tiles.
//!
//! Decompression: each lane looks up the expansion length of its code
//! byte (escape markers resolved by run-parity), lanes share their write
//! offsets with a warp inclusive scan — the paper's "block threads share
//! how many characters they must write" — and expansions are scattered.

use crate::device_dict::DeviceDict;
use simt::{BlockCtx, Mask, WarpVec, WARP_SIZE};
use zsmiles_core::ESCAPE;

/// Longest line a block can process (bounded by shared memory).
pub const MAX_LINE: usize = 4096;

/// Pack (cost, len, code) into one u32 so a warp min-reduction picks the
/// best edge with the CPU tie-break order: lower cost, then any code over
/// escape, then longer pattern, then smaller code.
#[inline]
fn pack_key(cost: u32, len: u32, code: u8) -> u32 {
    debug_assert!(cost < 1 << 18);
    (cost << 13) | ((16 - len) << 8) | code as u32
}

#[inline]
fn unpack_key(key: u32) -> (u32, u32, u8) {
    (key >> 13, 16 - ((key >> 8) & 0x1F), key as u8)
}

/// Compress one line; returns the compressed bytes for this block.
pub fn compress_block(ctx: &mut BlockCtx, dict: &DeviceDict, line: &[u8]) -> Vec<u8> {
    let n = line.len();
    assert!(n <= MAX_LINE, "line exceeds block shared-memory budget");
    if n == 0 {
        return Vec::new();
    }
    let w = dict.lmax + 1;

    // ---- Phase 1: stage line, build the edge table -----------------------
    // edges[pos * w + len] = code (0 = no edge).
    let tiles = n.div_ceil(WARP_SIZE);
    let mut staged = vec![0u8; n];
    for t in 0..tiles {
        let base = t * WARP_SIZE;
        let mask = Mask::from_fn(|i| base + i < n);
        let offs = WarpVec::from_fn(|i| (base + i).min(n - 1) as u32);
        let bytes = ctx
            .warp
            .global_read::<u8>(line, &offs, mask, |buf, o| buf[o]);
        for i in 0..WARP_SIZE {
            if mask.lane(i) {
                staged[base + i] = bytes.lane(i);
            }
        }
        ctx.warp.cost.instructions += 1; // shared store
    }
    ctx.sync();

    let mut edges = vec![0u8; n * w];
    for t in 0..tiles {
        let base = t * WARP_SIZE;
        let active = Mask::from_fn(|i| base + i < n);
        for e in 0..dict.len() {
            let pat = dict.pattern(e);
            let plen = pat.len();
            // Lockstep compare: every lane tests this entry at its own
            // position. Cost: the compare loop (one instruction per
            // pattern byte) plus mask bookkeeping — charged per warp, the
            // SIMT way, regardless of how many lanes hit.
            ctx.warp.cost.instructions += 2 + plen as u64;
            for i in 0..WARP_SIZE {
                let pos = base + i;
                if active.lane(i) && pos + plen <= n && &staged[pos..pos + plen] == pat {
                    edges[pos * w + plen] = dict.codes[e];
                }
            }
            ctx.warp.cost.instructions += 1; // masked shared store of the edge
        }
    }
    ctx.sync();

    // ---- Phase 2: backward shortest-path scan ----------------------------
    // dist[i] = cheapest bytes to encode line[i..]; choice packs (len, code).
    let mut dist = vec![0u32; n + 1];
    let mut choice = vec![(0u32, 0u8); n];
    let lane_ids = ctx.warp.lane_id();
    for i in (0..n).rev() {
        // Lane 0 proposes the escape edge, lane l (lmin..=lmax) the
        // dictionary edge of length l, inactive lanes propose u32::MAX.
        let candidate_mask = Mask::from_fn(|l| l == 0 || (l <= dict.lmax && i + l <= n));
        let keys = ctx.warp.map(&lane_ids, candidate_mask, |l| {
            let l = l as usize;
            if l == 0 {
                pack_key(2 + dist[i + 1], 0, 0)
            } else {
                let code = edges[i * w + l];
                if code == 0 {
                    u32::MAX
                } else {
                    pack_key(1 + dist[i + l], l as u32, code)
                }
            }
        });
        // Inactive lanes yield the default 0 — mask them out of the min.
        let best = ctx.warp.reduce_min(&keys, candidate_mask);
        let (cost, len, code) = unpack_key(best);
        dist[i] = cost;
        choice[i] = (len, code);
        ctx.warp.cost.instructions += 2; // shared stores of dist/choice
    }
    ctx.sync();

    // ---- Phase 3: walk the path, emit, copy out --------------------------
    let mut staged_out = Vec::with_capacity(dist[0] as usize);
    let mut i = 0usize;
    while i < n {
        let (len, code) = choice[i];
        if len == 0 {
            staged_out.push(ESCAPE);
            staged_out.push(staged[i]);
            i += 1;
        } else {
            staged_out.push(code);
            i += len as usize;
        }
        ctx.warp.cost.instructions += 2; // single-lane walk step
    }
    debug_assert_eq!(staged_out.len(), dist[0] as usize);

    // Coalesced copy shared → global.
    let m = staged_out.len();
    let mut out = vec![0u8; m];
    for t in 0..m.div_ceil(WARP_SIZE) {
        let base = t * WARP_SIZE;
        let mask = Mask::from_fn(|l| base + l < m);
        let offs = WarpVec::from_fn(|l| (base + l).min(m.saturating_sub(1)) as u32);
        let vals = WarpVec::from_fn(|l| {
            if base + l < m {
                staged_out[base + l]
            } else {
                0
            }
        });
        ctx.warp
            .global_write(&mut out, &offs, &vals, mask, |buf, o, v| buf[o] = v);
    }
    out
}

/// Decompress one line; returns the expanded bytes for this block.
pub fn decompress_block(
    ctx: &mut BlockCtx,
    dict: &DeviceDict,
    line: &[u8],
) -> Result<Vec<u8>, String> {
    let n = line.len();
    if n == 0 {
        return Ok(Vec::new());
    }

    // Stage compressed bytes (coalesced).
    let tiles = n.div_ceil(WARP_SIZE);
    let mut staged = vec![0u8; n];
    for t in 0..tiles {
        let base = t * WARP_SIZE;
        let mask = Mask::from_fn(|i| base + i < n);
        let offs = WarpVec::from_fn(|i| (base + i).min(n - 1) as u32);
        let bytes = ctx
            .warp
            .global_read::<u8>(line, &offs, mask, |buf, o| buf[o]);
        for i in 0..WARP_SIZE {
            if mask.lane(i) {
                staged[base + i] = bytes.lane(i);
            }
        }
        ctx.warp.cost.instructions += 1;
    }
    ctx.sync();

    // Per-byte expansion lengths. A byte is "consumed" if the run of
    // escape markers immediately before it has odd length (escape pairs
    // chain); consumed bytes and escape markers contribute the literal at
    // the marker's position.
    let mut consumed = vec![false; n];
    {
        let mut run = 0usize;
        for i in 0..n {
            let is_consumed = run % 2 == 1;
            consumed[i] = is_consumed;
            if !is_consumed && staged[i] == ESCAPE {
                run += 1;
            } else {
                run = 0;
            }
        }
        // One pass over the line on lane 0; cheap next to the scans.
        ctx.warp.cost.instructions += n as u64;
    }

    let mut out_len_at = vec![0u32; n];
    let mut total = 0u64;
    for t in 0..tiles {
        let base = t * WARP_SIZE;
        let mask = Mask::from_fn(|i| base + i < n);
        let idx = WarpVec::from_fn(|i| (base + i).min(n - 1) as u32);
        // Lane-parallel table lookup — the paper's "each block's thread
        // performs a lookup into the dictionary".
        let lens = ctx.warp.map(&idx, mask, |p| {
            let p = p as usize;
            if consumed[p] {
                0u32
            } else if staged[p] == ESCAPE {
                if p + 1 >= n {
                    u32::MAX // truncated escape, detected below
                } else {
                    1
                }
            } else {
                dict.expand_len[staged[p] as usize] as u32
            }
        });
        for i in 0..WARP_SIZE {
            if mask.lane(i) {
                let v = lens.lane(i);
                if v == u32::MAX {
                    return Err("truncated escape".into());
                }
                if v == 0 && !consumed[base + i] && staged[base + i] != ESCAPE {
                    return Err(format!(
                        "unknown code 0x{:02x} at byte {}",
                        staged[base + i],
                        base + i
                    ));
                }
            }
        }
        // Warp prefix sum gives each lane its write offset within the
        // tile; the running total carries across tiles.
        let scanned = ctx.warp.inclusive_scan_add(&lens, mask);
        for i in 0..WARP_SIZE {
            if mask.lane(i) {
                out_len_at[base + i] = total as u32 + scanned.lane(i) - lens.lane(i);
            }
        }
        let tile_total = ctx.warp.reduce_add(&lens, mask);
        total += tile_total as u64;
        ctx.warp.cost.instructions += 2;
    }
    ctx.sync();

    // Scatter expansions. The inner loop runs to the longest expansion in
    // the warp (lockstep), shorter lanes masked off.
    let mut out = vec![0u8; total as usize];
    for t in 0..tiles {
        let base = t * WARP_SIZE;
        let mask = Mask::from_fn(|i| base + i < n && !consumed[base + i]);
        let max_len = (0..WARP_SIZE)
            .filter(|&i| mask.lane(i))
            .map(|i| {
                let p = base + i;
                if staged[p] == ESCAPE {
                    1
                } else {
                    dict.expand_len[staged[p] as usize] as usize
                }
            })
            .max()
            .unwrap_or(0);
        for k in 0..max_len {
            let write_mask = Mask::from_fn(|i| {
                if !mask.lane(i) {
                    return false;
                }
                let p = base + i;
                let l = if staged[p] == ESCAPE {
                    1
                } else {
                    dict.expand_len[staged[p] as usize] as usize
                };
                k < l
            });
            let offs = WarpVec::from_fn(|i| {
                if write_mask.lane(i) {
                    out_len_at[base + i] + k as u32
                } else {
                    0
                }
            });
            let vals = WarpVec::from_fn(|i| {
                if !write_mask.lane(i) {
                    return 0u8;
                }
                let p = base + i;
                if staged[p] == ESCAPE {
                    staged[p + 1]
                } else {
                    dict.expand_bytes[staged[p] as usize][k]
                }
            });
            ctx.warp
                .global_write(&mut out, &offs, &vals, write_mask, |buf, o, v| buf[o] = v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::BlockCtx;
    use zsmiles_core::{Compressor, Decompressor, DictBuilder, Dictionary};

    fn dict() -> Dictionary {
        let corpus: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        ]
        .repeat(8);
        DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(corpus)
        .unwrap()
    }

    #[test]
    fn pack_key_orders_like_cpu_tie_break() {
        // Lower cost wins.
        assert!(pack_key(1, 4, 10) < pack_key(2, 8, 10));
        // Equal cost: code beats escape.
        assert!(pack_key(3, 1, 10) < pack_key(3, 0, 0));
        // Equal cost: longer pattern beats shorter.
        assert!(pack_key(3, 8, 200) < pack_key(3, 2, 10));
        // Equal cost and length: smaller code.
        assert!(pack_key(3, 4, 10) < pack_key(3, 4, 11));
        // Round trip.
        assert_eq!(unpack_key(pack_key(7, 5, 42)), (7, 5, 42));
        assert_eq!(unpack_key(pack_key(2, 0, 0)), (2, 0, 0));
    }

    #[test]
    fn kernel_output_matches_cpu_engine_exactly() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        let mut cpu = Compressor::new(&d).with_preprocess(false);
        let mut ctx = BlockCtx::new();
        for line in [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CCN(CC)CC",                // partially out-of-dictionary
            b"total mismatch ~~ bytes!", // heavy escaping
            b"C",
        ] {
            let mut want = Vec::new();
            cpu.compress_line(line, &mut want);
            ctx.reset();
            let got = compress_block(&mut ctx, &dd, line);
            assert_eq!(
                got,
                want,
                "byte-identical CPU/GPU output for {}",
                String::from_utf8_lossy(line)
            );
        }
    }

    #[test]
    fn decompress_kernel_matches_cpu() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        let mut cpu = Compressor::new(&d).with_preprocess(false);
        let mut ctx = BlockCtx::new();
        for line in [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"odd in put # with escapes",
        ] {
            let mut z = Vec::new();
            cpu.compress_line(line, &mut z);
            ctx.reset();
            let got = decompress_block(&mut ctx, &dd, &z).unwrap();
            assert_eq!(got, line);
            // And against the CPU decompressor for good measure.
            let mut want = Vec::new();
            Decompressor::new(&d)
                .decompress_line(&z, &mut want)
                .unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn escape_runs_decode_correctly() {
        // A compressed stream with chained escapes: marker+literal pairs,
        // including an escaped escape byte.
        let d = Dictionary::identity_only(zsmiles_core::Prepopulation::SmilesAlphabet);
        let dd = DeviceDict::from_dictionary(&d);
        let mut cpu = Compressor::new(&d).with_preprocess(false);
        let mut ctx = BlockCtx::new();
        // '!' and '~' are not in the SMILES alphabet → escaped.
        let line = b"C!~!!C~~";
        let mut z = Vec::new();
        cpu.compress_line(line, &mut z);
        let got = decompress_block(&mut ctx, &dd, &z).unwrap();
        assert_eq!(got, line);
    }

    #[test]
    fn decompress_kernel_rejects_garbage() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        let mut ctx = BlockCtx::new();
        assert!(
            decompress_block(&mut ctx, &dd, &[ESCAPE]).is_err(),
            "dangling escape"
        );
        ctx.reset();
        assert!(
            decompress_block(&mut ctx, &dd, &[0x01]).is_err(),
            "bad code"
        );
    }

    #[test]
    fn empty_line() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        let mut ctx = BlockCtx::new();
        assert!(compress_block(&mut ctx, &dd, b"").is_empty());
        ctx.reset();
        assert!(decompress_block(&mut ctx, &dd, b"").unwrap().is_empty());
    }

    #[test]
    fn kernels_account_memory_traffic() {
        let d = dict();
        let dd = DeviceDict::from_dictionary(&d);
        let mut ctx = BlockCtx::new();
        let line = b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2";
        let z = compress_block(&mut ctx, &dd, line);
        let cost = ctx.warp.cost;
        assert_eq!(cost.bytes_read, line.len() as u64, "line staged once");
        assert_eq!(cost.bytes_written, z.len() as u64);
        assert!(cost.load_transactions >= 1);
        assert!(cost.instructions > dd.len() as u64, "match phase dominates");
        assert!(cost.syncs >= 3, "phases separated by barriers");
    }
}
