//! Host-side pipeline: split a deck into lines, launch one block per
//! line, reassemble outputs in order, and account the bytes that the
//! device profiles turn into modeled time.
//!
//! Pre-processing (ring-ID renumbering) happens host-side before the
//! transfer, matching the paper's Fig. 3 where the optional preprocess
//! stage precedes compression.

use crate::device_dict::DeviceDict;
use crate::kernels::{compress_block, decompress_block};
use simt::{launch, CostReport};
use smiles::preprocess::{Preprocessor, RingRenumber};
use zsmiles_core::engine::{AnyDictionary, DynEngine};
use zsmiles_core::{Dictionary, ZsmilesError, LINE_SEP};

/// Launch configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpuOptions {
    /// Simulator worker threads (fidelity is unaffected; this is host
    /// wall-clock only).
    pub workers: usize,
    /// Host-side ring-ID pre-processing before compression. `None`
    /// follows the dictionary's training setting.
    pub preprocess: Option<bool>,
}

impl Default for GpuOptions {
    fn default() -> Self {
        GpuOptions {
            workers: 8,
            preprocess: None,
        }
    }
}

/// Result of a simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Newline-separated output, line-for-line with the input.
    pub output: Vec<u8>,
    /// Aggregated kernel cost (feed to [`simt::DeviceProfile`]).
    pub report: CostReport,
    /// Payload bytes into the kernel (after host preprocessing).
    pub in_bytes: u64,
    /// Payload bytes out of the kernel.
    pub out_bytes: u64,
    /// Lines processed (= blocks launched).
    pub lines: u64,
}

/// Compress a newline-separated buffer on the simulated device.
pub fn compress(dict: &Dictionary, input: &[u8], opts: &GpuOptions) -> GpuRun {
    let dd = DeviceDict::from_dictionary(dict);
    let preprocess = opts.preprocess.unwrap_or(dict.preprocessed());
    run_compress(&dd, preprocess, input, opts)
}

/// [`compress`] for a run-time-flavoured dictionary (e.g. straight from a
/// `.zsa` container): staging goes through [`DeviceDict::stage`] and the
/// preprocessing default through the [`DynEngine`] facade, so this layer
/// holds no flavour match of its own.
pub fn compress_any(
    dict: &AnyDictionary,
    input: &[u8],
    opts: &GpuOptions,
) -> Result<GpuRun, ZsmilesError> {
    let dd = DeviceDict::stage(dict)?;
    let preprocess = opts.preprocess.unwrap_or(DynEngine::preprocessed(dict));
    Ok(run_compress(&dd, preprocess, input, opts))
}

fn run_compress(dd: &DeviceDict, preprocess: bool, input: &[u8], opts: &GpuOptions) -> GpuRun {
    // Host-side preprocessing pass (cheap, line-local).
    let mut lines: Vec<Vec<u8>> = Vec::new();
    let mut pp = Preprocessor::new();
    for line in input.split(|&b| b == LINE_SEP).filter(|l| !l.is_empty()) {
        if preprocess {
            let mut buf = Vec::with_capacity(line.len());
            match pp.process_into(line, RingRenumber::Innermost, 0, &mut buf) {
                Ok(()) => lines.push(buf),
                Err(_) => lines.push(line.to_vec()),
            }
        } else {
            lines.push(line.to_vec());
        }
    }

    let in_bytes: u64 = lines.iter().map(|l| l.len() as u64).sum();
    let (outputs, report) = launch(lines.len(), opts.workers, |ctx, b| {
        compress_block(ctx, dd, &lines[b])
    });

    let mut output = Vec::with_capacity(input.len());
    let mut out_bytes = 0u64;
    for o in &outputs {
        out_bytes += o.len() as u64;
        output.extend_from_slice(o);
        output.push(LINE_SEP);
    }
    GpuRun {
        output,
        report,
        in_bytes,
        out_bytes,
        lines: outputs.len() as u64,
    }
}

/// Decompress a newline-separated buffer on the simulated device.
pub fn decompress(
    dict: &Dictionary,
    input: &[u8],
    opts: &GpuOptions,
) -> Result<GpuRun, ZsmilesError> {
    let dd = DeviceDict::from_dictionary(dict);
    run_decompress(&dd, input, opts)
}

/// [`decompress`] for a run-time-flavoured dictionary.
pub fn decompress_any(
    dict: &AnyDictionary,
    input: &[u8],
    opts: &GpuOptions,
) -> Result<GpuRun, ZsmilesError> {
    let dd = DeviceDict::stage(dict)?;
    run_decompress(&dd, input, opts)
}

fn run_decompress(
    dd: &DeviceDict,
    input: &[u8],
    opts: &GpuOptions,
) -> Result<GpuRun, ZsmilesError> {
    let lines: Vec<&[u8]> = input
        .split(|&b| b == LINE_SEP)
        .filter(|l| !l.is_empty())
        .collect();
    let in_bytes: u64 = lines.iter().map(|l| l.len() as u64).sum();

    let (outputs, report) = launch(lines.len(), opts.workers, |ctx, b| {
        decompress_block(ctx, dd, lines[b])
    });

    let mut output = Vec::with_capacity(input.len() * 3);
    let mut out_bytes = 0u64;
    for (i, o) in outputs.into_iter().enumerate() {
        match o {
            Ok(bytes) => {
                out_bytes += bytes.len() as u64;
                output.extend_from_slice(&bytes);
                output.push(LINE_SEP);
            }
            Err(msg) => {
                return Err(ZsmilesError::DictFormat {
                    line: i + 1,
                    reason: format!("device decompression failed: {msg}"),
                })
            }
        }
    }
    Ok(GpuRun {
        output,
        report,
        in_bytes,
        out_bytes,
        lines: in_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsmiles_core::{compress_parallel, Compressor, DictBuilder, SpAlgorithm};

    fn fixture() -> (Dictionary, Vec<u8>) {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ]
        .repeat(16);
        let dict = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        (dict, input)
    }

    #[test]
    fn gpu_compression_matches_cpu_byte_for_byte() {
        let (dict, input) = fixture();
        let mut cpu_out = Vec::new();
        Compressor::new(&dict).compress_buffer(&input, &mut cpu_out);
        let run = compress(&dict, &input, &GpuOptions::default());
        assert_eq!(run.output, cpu_out);
        assert_eq!(run.lines, 64);
        assert!(run.report.total.instructions > 0);
        // And matches the parallel CPU engine too (transitivity check).
        let (par, _) = compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, 4);
        assert_eq!(run.output, par);
    }

    #[test]
    fn gpu_round_trip() {
        let (dict, input) = fixture();
        let z = compress(&dict, &input, &GpuOptions::default());
        let back = decompress(&dict, &z.output, &GpuOptions::default()).unwrap();
        // Dictionary was trained with preprocessing on, so the round trip
        // returns the preprocessed (still-valid) form.
        let mut expect = Vec::new();
        let mut pp = Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back.output, expect);
        assert_eq!(back.out_bytes, z.in_bytes);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let (dict, input) = fixture();
        let a = compress(
            &dict,
            &input,
            &GpuOptions {
                workers: 1,
                preprocess: None,
            },
        );
        let b = compress(
            &dict,
            &input,
            &GpuOptions {
                workers: 7,
                preprocess: None,
            },
        );
        assert_eq!(a.output, b.output);
        assert_eq!(
            a.report, b.report,
            "cost accounting independent of host threads"
        );
    }

    #[test]
    fn device_time_is_memory_bound_for_decompression() {
        let (dict, input) = fixture();
        let z = compress(&dict, &input, &GpuOptions::default());
        let run = decompress(&dict, &z.output, &GpuOptions::default()).unwrap();
        let kt = simt::A100_LIKE.kernel_time(&run.report);
        // Decompression is lookups + copies: traffic, not arithmetic.
        assert!(
            kt.memory_s * 20.0 > kt.compute_s,
            "decompression should be near the memory roof: {kt:?}"
        );
    }

    #[test]
    fn corrupt_input_reports_line() {
        let (dict, _) = fixture();
        let r = decompress(&dict, b"\x01\x02\n", &GpuOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn any_dictionary_staging_matches_concrete_path() {
        let (dict, input) = fixture();
        let any = AnyDictionary::Base(Box::new(dict.clone()));
        let via_any = compress_any(&any, &input, &GpuOptions::default()).unwrap();
        let via_concrete = compress(&dict, &input, &GpuOptions::default());
        assert_eq!(via_any.output, via_concrete.output);
        assert_eq!(via_any.report, via_concrete.report);
        let back = decompress_any(&any, &via_any.output, &GpuOptions::default()).unwrap();
        assert_eq!(back.out_bytes, via_any.in_bytes);
    }

    #[test]
    fn wide_staging_is_rejected_not_mislaid() {
        let (_, input) = fixture();
        let lines: Vec<&[u8]> = input
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        let wide = zsmiles_core::WideDictBuilder {
            base: zsmiles_core::DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size: 16,
        }
        .train(lines.iter().copied())
        .unwrap();
        let any = AnyDictionary::Wide(Box::new(wide));
        let err = compress_any(&any, &input, &GpuOptions::default()).unwrap_err();
        assert!(matches!(err, ZsmilesError::Unsupported { .. }), "{err}");
        assert!(DeviceDict::stage(&any).is_err());
    }
}
