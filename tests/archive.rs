//! `.zsa` container properties: the single-file random-access story must
//! hold for arbitrary decks, both engines, and survive corruption attempts.

use proptest::prelude::*;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{Archive, DictBuilder, WideDictBuilder, ZsmilesError};

/// Train either dictionary flavour on the deck (preprocess off, so round
/// trips are byte-exact).
fn dict_for(deck: &molgen::Dataset, wide_size: usize) -> AnyDictionary {
    let base = DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    };
    if wide_size == 0 {
        AnyDictionary::Base(Box::new(base.train(deck.iter()).unwrap()))
    } else {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder { base, wide_size }
                .train(deck.iter())
                .unwrap(),
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack → serialize → reopen → get(i) → unpack is byte-identical for
    /// arbitrary generated decks, random probe lines, and both engines.
    #[test]
    fn zsa_round_trip_both_engines(
        seed in 0u64..10_000,
        lines in 1usize..60,
        wide_size in prop_oneof![Just(0usize), Just(48usize)],
        probe in 0usize..1_000,
        threads in 1usize..5,
    ) {
        let deck = molgen::Dataset::generate_mixed(lines, seed);
        let dict = dict_for(&deck, wide_size);
        let archive = Archive::pack(dict, deck.as_bytes(), threads);
        prop_assert_eq!(archive.len(), deck.len());

        // Through the container bytes, as a file would travel.
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reopened = Archive::read_from(&blob).unwrap();

        // Random access at an arbitrary in-range line.
        let i = probe % deck.len();
        prop_assert_eq!(reopened.get(i).unwrap(), deck.line(i).to_vec());

        // Full unpack restores the deck byte-for-byte.
        let (back, stats) = reopened.unpack(threads).unwrap();
        prop_assert_eq!(back, deck.as_bytes().to_vec());
        prop_assert_eq!(stats.lines, deck.len());
    }

    /// Any single corrupted byte in the body is caught by the CRC before
    /// content is interpreted (trailer bytes fail the trailer check
    /// instead — either way corruption never parses).
    #[test]
    fn zsa_single_byte_corruption_rejected(
        seed in 0u64..5_000,
        victim in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let deck = molgen::Dataset::generate_mixed(20, seed);
        let dict = dict_for(&deck, 0);
        let archive = Archive::pack(dict, deck.as_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();

        let at = victim % blob.len();
        blob[at] ^= flip;
        prop_assert!(
            Archive::read_from(&blob).is_err(),
            "flipping byte {} (of {}) must not parse", at, blob.len()
        );
    }
}

#[test]
fn crc_error_is_reported_as_archive_format() {
    let deck = molgen::Dataset::generate_mixed(30, 7);
    let archive = Archive::pack(dict_for(&deck, 0), deck.as_bytes(), 1);
    let mut blob = Vec::new();
    archive.write_to(&mut blob).unwrap();
    // Corrupt a payload byte (inside the CRC-covered region, after the
    // header and dictionary).
    let at = blob.len() - 64;
    blob[at] ^= 0x10;
    match Archive::read_from(&blob) {
        Err(ZsmilesError::ArchiveFormat { reason }) => {
            assert!(reason.contains("CRC"), "reason: {reason}");
        }
        other => panic!("expected ArchiveFormat CRC error, got {other:?}"),
    }
}

#[test]
fn zsa_is_self_describing_across_engines() {
    // A reader with no out-of-band knowledge decodes archives of either
    // flavour — the property the loose-file triple could not offer.
    let deck = molgen::Dataset::generate_mixed(40, 99);
    for wide_size in [0usize, 32] {
        let archive = Archive::pack(dict_for(&deck, wide_size), deck.as_bytes(), 2);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reopened = Archive::read_from(&blob).unwrap();
        let (back, _) = reopened.unpack(1).unwrap();
        assert_eq!(back, deck.as_bytes(), "wide_size={wide_size}");
    }
}
