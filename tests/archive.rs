//! `.zsa` container properties: the single-file random-access story must
//! hold for arbitrary decks, both engines, and survive corruption attempts
//! — through the in-memory [`Archive`] and, byte-identically, through the
//! out-of-core [`ArchiveReader`] over a real file.

use proptest::prelude::*;
use zsmiles_core::engine::{AnyDictionary, DynEngine};
use zsmiles_core::source::{ArchiveSource, CountingSource, FileSource, InMemorySource};
use zsmiles_core::{Archive, ArchiveReader, DictBuilder, WideDictBuilder, ZsmilesError};

/// Train either dictionary flavour on the deck (preprocess off, so round
/// trips are byte-exact).
fn dict_for(deck: &molgen::Dataset, wide_size: usize) -> AnyDictionary {
    let base = DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    };
    if wide_size == 0 {
        AnyDictionary::Base(Box::new(base.train(deck.iter()).unwrap()))
    } else {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder { base, wide_size }
                .train(deck.iter())
                .unwrap(),
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack → serialize → reopen → get(i) → unpack is byte-identical for
    /// arbitrary generated decks, random probe lines, and both engines.
    #[test]
    fn zsa_round_trip_both_engines(
        seed in 0u64..10_000,
        lines in 1usize..60,
        wide_size in prop_oneof![Just(0usize), Just(48usize)],
        probe in 0usize..1_000,
        threads in 1usize..5,
    ) {
        let deck = molgen::Dataset::generate_mixed(lines, seed);
        let dict = dict_for(&deck, wide_size);
        let archive = Archive::pack(dict, deck.as_bytes(), threads);
        prop_assert_eq!(archive.len(), deck.len());

        // Through the container bytes, as a file would travel.
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reopened = Archive::read_from(&blob).unwrap();

        // Random access at an arbitrary in-range line.
        let i = probe % deck.len();
        prop_assert_eq!(reopened.get(i).unwrap(), deck.line(i).to_vec());

        // Full unpack restores the deck byte-for-byte.
        let (back, stats) = reopened.unpack(threads).unwrap();
        prop_assert_eq!(back, deck.as_bytes().to_vec());
        prop_assert_eq!(stats.lines, deck.len());
    }

    /// Any single corrupted byte in the body is caught by the CRC before
    /// content is interpreted (trailer bytes fail the trailer check
    /// instead — either way corruption never parses).
    #[test]
    fn zsa_single_byte_corruption_rejected(
        seed in 0u64..5_000,
        victim in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let deck = molgen::Dataset::generate_mixed(20, seed);
        let dict = dict_for(&deck, 0);
        let archive = Archive::pack(dict, deck.as_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();

        let at = victim % blob.len();
        blob[at] ^= flip;
        prop_assert!(
            Archive::read_from(&blob).is_err(),
            "flipping byte {} (of {}) must not parse", at, blob.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The out-of-core reader over a real file returns byte-identical
    /// lines to the in-memory `Archive::get`, for both engine flavours,
    /// single fetches and batched ranges alike.
    #[test]
    fn file_backed_reader_matches_in_memory_archive(
        seed in 0u64..10_000,
        lines in 1usize..60,
        wide_size in prop_oneof![Just(0usize), Just(48usize)],
        probe in 0usize..1_000,
    ) {
        let deck = molgen::Dataset::generate_mixed(lines, seed);
        let dict = dict_for(&deck, wide_size);
        let archive = Archive::pack(dict, deck.as_bytes(), 2);

        let path = std::env::temp_dir().join(format!(
            "zsa_reader_prop_{}_{seed}_{lines}_{wide_size}.zsa",
            std::process::id()
        ));
        archive.save(&path).unwrap();
        let reader = ArchiveReader::open(&path).unwrap();

        prop_assert_eq!(reader.len(), archive.len());
        prop_assert_eq!(reader.flavor(), archive.flavor());
        reader.verify().unwrap();

        let i = probe % deck.len();
        prop_assert_eq!(reader.get(i).unwrap(), archive.get(i).unwrap());
        prop_assert_eq!(
            reader.compressed_line(i).unwrap(),
            archive.compressed_line(i).unwrap().to_vec()
        );

        // A batched range and a full batched iteration both match.
        let hi = (i + 7).min(deck.len());
        prop_assert_eq!(reader.get_range(i..hi).unwrap(), archive.get_range(i..hi).unwrap());
        let streamed: Result<Vec<Vec<u8>>, _> = reader.lines_batched(97).collect();
        let streamed = streamed.unwrap();
        prop_assert_eq!(streamed.len(), deck.len());
        prop_assert_eq!(streamed[i].as_slice(), deck.line(i));

        std::fs::remove_file(&path).ok();
    }
}

/// The acceptance property of the read-path redesign: `get(line)` on a
/// metered source transfers the metadata once at open, then exactly one
/// positioned read of exactly that line's byte range — never the payload.
#[test]
fn counting_source_proves_get_touches_only_metadata_and_one_line() {
    let deck = molgen::Dataset::generate_mixed(500, 41);
    for wide_size in [0usize, 32] {
        let archive = Archive::pack(dict_for(&deck, wide_size), deck.as_bytes(), 2);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let file_len = blob.len() as u64;

        let src = CountingSource::new(InMemorySource::new(blob));
        let reader = ArchiveReader::from_source(src).unwrap();
        assert_eq!(
            reader.source().bytes_read(),
            reader.metadata_bytes(),
            "open transfers header + footer + dictionary + index, nothing else"
        );
        assert!(
            reader.metadata_bytes() + reader.payload_bytes() <= file_len,
            "payload is not part of the open transfer"
        );

        reader.source().reset();
        let line = 123usize;
        let line_bytes = reader.index().line_range(line).len() as u64;
        let got = reader.get(line).unwrap();
        assert_eq!(got, deck.line(line), "wide={wide_size}");
        assert_eq!(reader.source().reads(), 1, "one positioned read per get");
        assert_eq!(
            reader.source().bytes_read(),
            line_bytes,
            "the transfer is exactly the line's compressed range"
        );
        assert!(
            line_bytes < reader.payload_bytes(),
            "a single line is a strict subset of the payload"
        );
    }
}

/// `Box<dyn>` workers minted through the `DynEngine` facade produce
/// byte-identical streams to the concrete engines, both flavours.
#[test]
fn dyn_engine_boxed_workers_match_concrete_engines() {
    let deck = molgen::Dataset::generate_mixed(200, 77);
    for wide_size in [0usize, 48] {
        let dict = dict_for(&deck, wide_size);

        // Concrete path: the statically-dispatched parallel engine.
        let (concrete, cstats) = match &dict {
            AnyDictionary::Base(d) => zsmiles_core::compress_parallel_engine(
                &zsmiles_core::BaseEngine::new(d),
                deck.as_bytes(),
                3,
            ),
            AnyDictionary::Wide(d) => zsmiles_core::compress_parallel_engine(
                &zsmiles_core::WideEngine::new(d),
                deck.as_bytes(),
                3,
            ),
        };

        // Dyn path: Box<dyn LineEncoder> workers behind &dyn DynEngine.
        let engine: &dyn DynEngine = dict.as_dyn();
        let (dynamic, dstats) = zsmiles_core::compress_parallel_dyn(engine, deck.as_bytes(), 3);
        assert_eq!(dynamic, concrete, "wide={wide_size}");
        assert_eq!(dstats.lines, cstats.lines);

        // And the dyn decode round-trips to the original deck.
        let (back, _) = zsmiles_core::decompress_parallel_dyn(engine, &dynamic, 2).unwrap();
        assert_eq!(back, deck.as_bytes(), "wide={wide_size}");

        // Serial boxed workers too: encode+decode one line at a time.
        let mut enc = engine.boxed_encoder();
        let mut dec = engine.boxed_decoder();
        for i in [0usize, 42, 199] {
            let mut z = Vec::new();
            enc.encode_line(deck.line(i), &mut z);
            let mut out = Vec::new();
            dec.decode_line(&z, &mut out).unwrap();
            assert_eq!(out, deck.line(i), "wide={wide_size} line {i}");
        }
    }
}

/// Reader failure modes: truncated footer, zero-line archives, and
/// reads past the end of the source are errors, never panics.
#[test]
fn reader_error_cases() {
    let deck = molgen::Dataset::generate_mixed(20, 5);
    let archive = Archive::pack(dict_for(&deck, 0), deck.as_bytes(), 1);
    let mut blob = Vec::new();
    archive.write_to(&mut blob).unwrap();

    // Truncated footer: every truncation of the trailer region fails.
    for cut in 1..24 {
        assert!(
            ArchiveReader::from_source(&blob[..blob.len() - cut]).is_err(),
            "cut={cut}"
        );
    }

    // Zero-line archive opens, reports empty, errors on any fetch.
    let empty = Archive::pack(dict_for(&deck, 0), b"", 1);
    let mut eblob = Vec::new();
    empty.write_to(&mut eblob).unwrap();
    let reader = ArchiveReader::from_source(eblob.as_slice()).unwrap();
    assert_eq!(reader.len(), 0);
    assert!(matches!(
        reader.get(0).unwrap_err(),
        ZsmilesError::LineOutOfRange { line: 0, len: 0 }
    ));
    assert!(reader.get_range(0..1).is_err());

    // Read past EOF at the source level is a typed error.
    let path = std::env::temp_dir().join(format!("zsa_eof_{}.zsa", std::process::id()));
    archive.save(&path).unwrap();
    let src = FileSource::open(&path).unwrap();
    let len = src.len();
    assert!(matches!(
        src.read_range(len, 1).unwrap_err(),
        ZsmilesError::SourceOutOfBounds { .. }
    ));
    assert!(matches!(
        src.read_range(len - 3, 8).unwrap_err(),
        ZsmilesError::SourceOutOfBounds { .. }
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn crc_error_is_reported_as_archive_format() {
    let deck = molgen::Dataset::generate_mixed(30, 7);
    let archive = Archive::pack(dict_for(&deck, 0), deck.as_bytes(), 1);
    let mut blob = Vec::new();
    archive.write_to(&mut blob).unwrap();
    // Corrupt a payload byte (inside the CRC-covered region, after the
    // header and dictionary).
    let at = blob.len() - 64;
    blob[at] ^= 0x10;
    match Archive::read_from(&blob) {
        Err(ZsmilesError::ArchiveFormat { reason }) => {
            assert!(reason.contains("CRC"), "reason: {reason}");
        }
        other => panic!("expected ArchiveFormat CRC error, got {other:?}"),
    }
}

#[test]
fn zsa_is_self_describing_across_engines() {
    // A reader with no out-of-band knowledge decodes archives of either
    // flavour — the property the loose-file triple could not offer.
    let deck = molgen::Dataset::generate_mixed(40, 99);
    for wide_size in [0usize, 32] {
        let archive = Archive::pack(dict_for(&deck, wide_size), deck.as_bytes(), 2);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reopened = Archive::read_from(&blob).unwrap();
        let (back, _) = reopened.unpack(1).unwrap();
        assert_eq!(back, deck.as_bytes(), "wide_size={wide_size}");
    }
}
