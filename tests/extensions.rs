//! Cross-crate integration for the extension systems: the wide-code
//! dictionary, the SMAZ baseline, and the vscreen campaign substrate —
//! each exercised against the same generated decks as the paper-faithful
//! core, so their interplay (shared dictionaries, archives, random access)
//! is tested at the system level.

use molgen::Dataset;
use textcomp::{line_codec_ratio, smaz::Smaz};
use vscreen::{screen, screen_parallel, top_hits, Archive, Pocket, StorageModel};
use zsmiles_core::{Compressor, DictBuilder, WideCompressor, WideDecompressor, WideDictBuilder};

fn deck() -> Dataset {
    Dataset::generate_mixed(1_200, 0xE87)
}

#[test]
fn wide_dictionary_beats_base_on_a_real_deck() {
    let ds = deck();
    let base = DictBuilder::default().train(ds.iter()).unwrap();
    let wide = WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 512,
    }
    .train(ds.iter())
    .unwrap();
    assert!(
        wide.wide_len() > 100,
        "deck is diverse enough to spill wide"
    );

    let mut zb = Vec::new();
    let sb = Compressor::new(&base).compress_buffer(ds.as_bytes(), &mut zb);
    let mut zw = Vec::new();
    let sw = WideCompressor::new(&wide).compress_buffer(ds.as_bytes(), &mut zw);
    assert!(
        sw.ratio() < sb.ratio(),
        "512 extra codes should win: wide {} vs base {}",
        sw.ratio(),
        sb.ratio()
    );

    // And the wide archive still round-trips molecule-for-molecule.
    let mut back = Vec::new();
    WideDecompressor::new(&wide)
        .decompress_buffer(&zw, &mut back)
        .unwrap();
    let restored = Dataset::from_bytes(&back);
    assert_eq!(restored.len(), ds.len());
    for (a, b) in ds.iter().zip(restored.iter()).step_by(83) {
        assert_eq!(
            smiles::parser::parse(a).unwrap().signature(),
            smiles::parser::parse(b).unwrap().signature()
        );
    }
}

#[test]
fn wide_output_remains_readable_and_separable() {
    let ds = deck();
    let wide = WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 256,
    }
    .train(ds.iter())
    .unwrap();
    let mut z = Vec::new();
    WideCompressor::new(&wide).compress_buffer(ds.as_bytes(), &mut z);
    for &b in &z {
        assert!(
            b == b'\n' || b == b' ' || (0x21..=0x7E).contains(&b) || b >= 0x80,
            "byte {b:#04x} breaks readability"
        );
    }
    assert_eq!(
        z.iter().filter(|&&b| b == b'\n').count(),
        ds.len(),
        "line separability preserved"
    );
}

#[test]
fn smaz_ranks_where_the_paper_puts_codebook_tools() {
    // On a SMILES deck: ZSMILES (trained, domain-aware) < SMAZ-trained <
    // SMAZ-classic. The static English codebook barely compresses — the
    // reason the paper's related work passes over it.
    let ds = deck();
    let input = ds.as_bytes();

    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let mut z = Vec::new();
    let zstats = Compressor::new(&dict).compress_buffer(input, &mut z);

    let trained = Smaz::train(input);
    let (t_out, t_in) = line_codec_ratio(&trained, input);
    let trained_ratio = t_out as f64 / t_in as f64;

    let classic = Smaz::classic();
    let (c_out, c_in) = line_codec_ratio(&classic, input);
    let classic_ratio = c_out as f64 / c_in as f64;

    assert!(
        zstats.ratio() < trained_ratio,
        "ZSMILES {} < SMAZ-trained {}",
        zstats.ratio(),
        trained_ratio
    );
    assert!(
        trained_ratio < classic_ratio,
        "SMAZ-trained {trained_ratio} < SMAZ-classic {classic_ratio}"
    );
    assert!(
        classic_ratio > 0.8,
        "English codebook is near-useless on SMILES"
    );
}

#[test]
fn campaign_on_a_wide_archive_equivalent() {
    // The vscreen flow works regardless of which dictionary compressed the
    // archive: scores come from the deck, retrieval from the archive.
    let ds = deck();
    let pocket = Pocket::from_seed(0xCAFE);
    let scores = screen_parallel(&ds, &pocket, 3);
    assert_eq!(scores, screen(&ds, &pocket));

    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let archive = Archive::build(&dict, ds.as_bytes());
    let hits = top_hits(&archive, &scores, 25).unwrap();
    assert_eq!(hits.len(), 25);

    // Every hit's SMILES is the molecule the scorer saw.
    for h in &hits {
        let from_deck = smiles::parser::parse(ds.line(h.index)).unwrap();
        let from_archive = smiles::parser::parse(&h.smiles).unwrap();
        assert_eq!(from_deck.signature(), from_archive.signature());
        assert_eq!(h.score, pocket.score(&from_deck));
    }

    // Storage arithmetic is consistent with the measured ratio.
    let m = StorageModel::MARCONI100;
    let saved = m.saved_tb(archive.ratio());
    assert!(saved > 0.0 && saved < m.raw_tb);
    assert!((m.compressed_tb(archive.ratio()) + saved - m.raw_tb).abs() < 1e-9);
}

#[test]
fn wide_and_base_archives_interoperate_per_line() {
    // Cut-and-combine still works when decks were compressed with
    // *different* dictionaries, as long as each line is decoded with its
    // own — the per-line separability the format guarantees.
    let ds = deck();
    let base = DictBuilder::default().train(ds.iter()).unwrap();
    let wide = WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 128,
    }
    .train(ds.iter())
    .unwrap();

    let mut zb = Vec::new();
    Compressor::new(&base).compress_buffer(ds.as_bytes(), &mut zb);
    let mut zw = Vec::new();
    WideCompressor::new(&wide).compress_buffer(ds.as_bytes(), &mut zw);

    let ib = zsmiles_core::LineIndex::build(&zb);
    let iw = zsmiles_core::LineIndex::build(&zw);
    let dec_b = zsmiles_core::Decompressor::new(&base);
    let dec_w = WideDecompressor::new(&wide);
    let mut dec_b = dec_b;
    for i in (0..ds.len()).step_by(131) {
        let mut a = Vec::new();
        dec_b.decompress_line(ib.line(&zb, i), &mut a).unwrap();
        let mut b = Vec::new();
        dec_w.decompress_line(iw.line(&zw, i), &mut b).unwrap();
        assert_eq!(a, b, "line {i}: both stacks restore the same bytes");
    }
}
