//! The pipelined serving path, end to end: pipelined responses
//! byte-match sequential ones at every depth, hostile frames injected
//! mid-pipeline get typed errors while surviving requests keep their
//! order, a 256-client pipelined stress stays flip-atomic under the
//! pooled executor, `top_hits` over the wire is byte-identical to a
//! local screening campaign, and a saturated server still answers its
//! `health` probe.

use proptest::prelude::*;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::serve::protocol::{self, ErrorCode, FrameRead, Request, Response};
use zsmiles_core::serve::{ClientOptions, Executor, QueryClient, ServeOptions, Server};
use zsmiles_core::shard::ShardPolicy;
use zsmiles_core::{DeckReader, DictBuilder, ShardedWriter, WriterOptions};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsmiles_it_pipe_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pack `deck` into a sharded `.zsm`, preprocess off so reads are
/// byte-exact.
fn pack_deck(dir: &Path, name: &str, deck: &molgen::Dataset, generation: u64) -> PathBuf {
    let dict = AnyDictionary::Base(Box::new(
        DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(deck.iter())
        .unwrap(),
    ));
    let path = dir.join(name);
    let mut w = ShardedWriter::create(
        &path,
        dict,
        ShardPolicy::by_lines(64),
        WriterOptions::default(),
    )
    .unwrap();
    w.set_generation(generation);
    w.write(deck.as_bytes()).unwrap();
    w.finish().unwrap();
    path
}

// ---------------------------------------------------------------------------
// Pipelined == sequential, proptest over depths 1/4/32
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix of line fetches answered through the pipeline at depths
    /// 1, 4 and 32 byte-matches the strictly sequential path — in-order
    /// delivery is the protocol's contract, not a scheduling accident.
    #[test]
    fn pipelined_responses_match_sequential(
        lines in proptest::collection::vec(0u64..200, 1..120),
        seed in any::<u64>(),
    ) {
        let dir = tmpdir(&format!("prop_{seed:x}_{}", lines.len()));
        let deck = molgen::Dataset::generate_mixed(200, 31);
        let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
        let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();

        let mut seq = QueryClient::connect(handle.addr()).unwrap();
        let want: Vec<Vec<u8>> = lines
            .iter()
            .map(|&l| seq.get(l).unwrap())
            .collect();
        for depth in [1usize, 4, 32] {
            let mut piped = QueryClient::connect(handle.addr()).unwrap();
            let got = piped.get_many_pipelined(&lines, depth).unwrap();
            prop_assert_eq!(&got, &want, "depth {}", depth);
        }

        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Hostile frames mid-pipeline: typed errors, survivors stay ordered
// ---------------------------------------------------------------------------

/// A pipelined burst with a malformed body in the middle: every frame
/// before and after the bad one is answered, in submission order, and
/// the bad one gets its typed error *in its own slot*.
#[test]
fn bad_body_mid_pipeline_errors_in_place_and_preserves_order() {
    let dir = tmpdir("midpipe_badbody");
    let deck = molgen::Dataset::generate_mixed(100, 7);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();

    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // One write, five frames: get 0, get 1, junk opcode, get 2, get 3.
    let mut burst = Vec::new();
    burst.extend_from_slice(&Request::Get { line: 0 }.encode());
    burst.extend_from_slice(&Request::Get { line: 1 }.encode());
    let junk = [0x6Fu8, 0xDE, 0xAD];
    burst.extend_from_slice(&(junk.len() as u32).to_le_bytes());
    burst.extend_from_slice(&junk);
    burst.extend_from_slice(&Request::Get { line: 2 }.encode());
    burst.extend_from_slice(&Request::Get { line: 3 }.encode());
    s.write_all(&burst).unwrap();

    let mut read =
        |_slot: usize| match protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME).unwrap() {
            FrameRead::Frame(body) => Response::decode(&body).unwrap(),
            other => panic!("expected a frame, got {other:?}"),
        };
    for slot in [0usize, 1] {
        assert_eq!(read(slot), Response::Lines(vec![deck.line(slot).to_vec()]));
    }
    match read(2) {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("opcode"), "got: {message}");
        }
        other => panic!("slot 2 should be the typed error, got {other:?}"),
    }
    // The connection survived a bad *body*: the tail still answers.
    for slot in [2usize, 3] {
        assert_eq!(
            read(slot + 1),
            Response::Lines(vec![deck.line(slot).to_vec()])
        );
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// An oversized length prefix mid-pipeline loses the frame boundary:
/// every request *before* it is answered in order, the poisoned slot
/// gets the typed oversized error, and the connection then closes —
/// frames after the poison are never guessed at.
#[test]
fn oversized_frame_mid_pipeline_answers_predecessors_then_closes() {
    let dir = tmpdir("midpipe_oversized");
    let deck = molgen::Dataset::generate_mixed(100, 8);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();

    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut burst = Vec::new();
    burst.extend_from_slice(&Request::Get { line: 5 }.encode());
    burst.extend_from_slice(&Request::Get { line: 6 }.encode());
    burst.extend_from_slice(&u32::MAX.to_le_bytes()); // poison
    burst.extend_from_slice(&Request::Get { line: 7 }.encode()); // never read
    s.write_all(&burst).unwrap();

    let mut read = || match protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME).unwrap() {
        FrameRead::Frame(body) => Response::decode(&body).unwrap(),
        other => panic!("expected a frame, got {other:?}"),
    };
    assert_eq!(read(), Response::Lines(vec![deck.line(5).to_vec()]));
    assert_eq!(read(), Response::Lines(vec![deck.line(6).to_vec()]));
    match read() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("oversized"), "got: {message}");
        }
        other => panic!("expected the oversized error, got {other:?}"),
    }
    // Nothing for the post-poison frame; the server closes instead.
    match protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME).unwrap() {
        FrameRead::Eof => {}
        other => panic!("connection should be closed after boundary loss, got {other:?}"),
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A frame truncated by a half-close mid-pipeline: completed requests
/// all answer first, then the truncation error closes the stream.
#[test]
fn truncated_tail_mid_pipeline_answers_completed_requests_first() {
    let dir = tmpdir("midpipe_trunc");
    let deck = molgen::Dataset::generate_mixed(100, 9);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();

    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut burst = Vec::new();
    burst.extend_from_slice(&Request::Get { line: 9 }.encode());
    burst.extend_from_slice(&64u32.to_le_bytes());
    burst.extend_from_slice(&[1, 2, 3]); // 3 of 64 promised bytes
    s.write_all(&burst).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();

    let mut read = || match protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME).unwrap() {
        FrameRead::Frame(body) => Response::decode(&body).unwrap(),
        other => panic!("expected a frame, got {other:?}"),
    };
    assert_eq!(read(), Response::Lines(vec![deck.line(9).to_vec()]));
    match read() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("truncated"), "got: {message}");
        }
        other => panic!("expected the truncated error, got {other:?}"),
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// 256 pipelined clients, flip mid-load, pooled executor
// ---------------------------------------------------------------------------

/// The acceptance stress: 256 concurrent pipelined clients under the
/// pooled executor while a generation flip lands mid-load. Every
/// response must byte-match generation A or generation B of its line —
/// never a torn mix — and after the flip settles only B answers.
#[test]
fn flip_stays_atomic_under_256_pipelined_clients() {
    let dir = tmpdir("stress256");
    let deck_a = molgen::Dataset::generate_mixed(300, 11);
    let deck_b = molgen::Dataset::generate_mixed(300, 12);
    let zsm_a = pack_deck(&dir, "a.zsm", &deck_a, 1);
    let zsm_b = pack_deck(&dir, "b.zsm", &deck_b, 2);
    let direct_a = DeckReader::open(&zsm_a).unwrap();
    let direct_b = DeckReader::open(&zsm_b).unwrap();

    let handle = Server::start(
        &zsm_a,
        "127.0.0.1:0",
        ServeOptions {
            executor: Executor::Pooled,
            max_connections: 300,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let opts = ClientOptions {
        connect_timeout: Some(Duration::from_secs(10)),
        read_timeout: Some(Duration::from_secs(30)),
        retries: 3,
        backoff: Duration::from_millis(10),
    };

    std::thread::scope(|scope| {
        for worker in 0..256u64 {
            let (direct_a, direct_b, opts) = (&direct_a, &direct_b, &opts);
            scope.spawn(move || {
                let mut c = QueryClient::connect_with(addr, opts).unwrap();
                // Deterministic per-worker walk, fetched pipelined.
                let lines: Vec<u64> = (0..24).map(|r| (worker * 37 + r * 13) % 300).collect();
                let got = c.get_many_pipelined(&lines, 8).unwrap();
                for (&i, bytes) in lines.iter().zip(&got) {
                    let a = direct_a.get(i as usize).unwrap();
                    let b = direct_b.get(i as usize).unwrap();
                    assert!(
                        *bytes == a || *bytes == b,
                        "worker {worker} line {i}: torn response"
                    );
                }
            });
        }
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            let mut c = QueryClient::connect_with(addr, &opts).unwrap();
            assert_eq!(c.flip(zsm_b.to_str().unwrap()).unwrap(), 2);
        });
    });

    // Settled: generation 2 serves everywhere.
    assert_eq!(handle.stats().generation, 2);
    assert_eq!(handle.stats().flips, 1);
    let mut c = QueryClient::connect(addr).unwrap();
    for i in [0u64, 150, 299] {
        assert_eq!(c.get(i).unwrap(), direct_b.get(i as usize).unwrap());
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// TOP_HITS over the wire == local campaign, byte for byte
// ---------------------------------------------------------------------------

/// The screening-over-the-wire residual: a wire `top_hits` with the
/// vscreen screener installed returns exactly what a local campaign
/// (screen → `ScoreTable::top_k` → `top_hits_cold`) produces over the
/// same deck — same lines, same order, same score *bits*.
#[test]
fn wire_top_hits_is_byte_identical_to_local_campaign() {
    let dir = tmpdir("tophits");
    let deck = molgen::Dataset::generate_mixed(400, 21);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let seed = 0xD0C5EEDu64;

    // Local campaign over the same on-disk deck.
    let pocket = vscreen::Pocket::from_seed(seed);
    let scores = vscreen::screen(&deck, &pocket);
    let cold = vscreen::ColdArchive::open(&zsm).unwrap();
    let local = vscreen::top_hits_cold(&cold, &scores, 25).unwrap();

    for executor in [Executor::Pooled, Executor::Threaded] {
        let handle = Server::start(
            &zsm,
            "127.0.0.1:0",
            ServeOptions {
                executor,
                screener: Some(Arc::new(vscreen::PocketScreener)),
                ..Default::default()
            },
        )
        .unwrap();
        let mut c = QueryClient::connect(handle.addr()).unwrap();
        let wire = c.top_hits(25, &seed.to_string()).unwrap();

        assert_eq!(wire.len(), local.len(), "{executor:?}");
        for (w, l) in wire.iter().zip(&local) {
            assert_eq!(w.index as usize, l.index, "{executor:?}");
            assert_eq!(w.score_bits, l.score.to_bits(), "{executor:?}");
            assert_eq!(w.smiles, l.smiles, "{executor:?}");
        }

        // k past the deck clamps exactly like the local campaign.
        assert_eq!(
            c.top_hits(10_000, &seed.to_string()).unwrap().len(),
            deck.len()
        );
        // A pattern that is not a seed is a typed error, not a hang.
        let err = c.top_hits(5, "not a seed").unwrap_err();
        assert!(err.to_string().contains("pocket seed"), "got: {err}");
        handle.shutdown();
    }

    // Without a screener installed, top_hits is a typed Unsupported.
    let bare = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut c = QueryClient::connect(bare.addr()).unwrap();
    let err = c.top_hits(5, &seed.to_string()).unwrap_err();
    assert!(err.to_string().contains("Unsupported"), "got: {err}");
    bare.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Over-cap HEALTH: a saturated server must not look dead
// ---------------------------------------------------------------------------

/// At the connection cap, a `health` probe is still answered (the
/// readiness-probe fix) while any other request over the cap gets the
/// typed `Busy` — under both executors.
#[test]
fn health_is_answered_even_at_the_connection_cap() {
    let dir = tmpdir("overcap");
    let deck = molgen::Dataset::generate_mixed(60, 3);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);

    for executor in [Executor::Pooled, Executor::Threaded] {
        let handle = Server::start(
            &zsm,
            "127.0.0.1:0",
            ServeOptions {
                executor,
                max_connections: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        // Occupy the single slot with a live connection.
        let mut occupant = QueryClient::connect(addr).unwrap();
        assert_eq!(occupant.get(0).unwrap(), deck.line(0));

        // Over the cap: health still answers...
        let mut probe = QueryClient::connect_with(
            addr,
            &ClientOptions {
                read_timeout: Some(Duration::from_secs(10)),
                ..Default::default()
            },
        )
        .unwrap();
        let h = probe.health().unwrap();
        assert!(h.ok, "{executor:?}: health answered at the cap");

        // ...while a data request over the cap is the typed Busy.
        let mut hungry = QueryClient::connect_with(
            addr,
            &ClientOptions {
                read_timeout: Some(Duration::from_secs(10)),
                ..Default::default()
            },
        )
        .unwrap();
        let err = hungry.get(0).unwrap_err();
        assert!(err.to_string().contains("Busy"), "{executor:?}: got {err}");

        // The occupant is unaffected throughout.
        assert_eq!(occupant.get(1).unwrap(), deck.line(1));
        handle.shutdown();
    }

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Multi-worker pool: cross-thread completions stay ordered
// ---------------------------------------------------------------------------

/// An explicit 2-worker pool forces the cross-thread handoff path even
/// on one-CPU machines (where the default single-worker pool answers
/// bounded reads inline on the loop thread): pipelined responses still
/// arrive in submission order and byte-match sequential reads, and a
/// screenerless `TOP_HITS` comes back through the pool as a typed
/// `Unsupported` error, not a hang.
#[test]
fn two_worker_pool_preserves_order_and_bytes() {
    let dir = tmpdir("pool2");
    let deck = molgen::Dataset::generate_mixed(300, 77);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(
        &zsm,
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();

    let mut seq = QueryClient::connect(handle.addr()).unwrap();
    let lines: Vec<u64> = (0..300u64).map(|i| (i * 7919) % 300).collect();
    let want: Vec<Vec<u8>> = lines.iter().map(|&l| seq.get(l).unwrap()).collect();
    let mut piped = QueryClient::connect(handle.addr()).unwrap();
    let got = piped.get_many_pipelined(&lines, 16).unwrap();
    assert_eq!(got, want);

    let err = piped.top_hits(3, "0x1").unwrap_err();
    assert!(err.to_string().contains("screener"), "got {err}");
    // The connection survives the unsupported request.
    assert_eq!(piped.get(0).unwrap(), deck.line(0));

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
