//! The query service, end to end: wire-protocol framing survives
//! arbitrary payloads and refuses arbitrary garbage with typed errors
//! (never a panic or a hang), concurrent clients read byte-identical
//! lines to a direct `DeckReader`, and a live generation flip is atomic —
//! every response equals a direct read of *some* complete generation,
//! and the retired generation's blocks leave the cache.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::serve::protocol::{self, FrameRead, Request, Response};
use zsmiles_core::serve::{Executor, QueryClient, ServeOptions, Server};
use zsmiles_core::shard::ShardPolicy;
use zsmiles_core::{
    BlockCache, DeckOptions, DeckReader, DictBuilder, ShardedWriter, WriterOptions, ZsmilesError,
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsmiles_it_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pack `deck` into a sharded `.zsm` at `dir/name`, optionally stamping
/// a generation. Preprocess is off so reads are byte-exact.
fn pack_deck(dir: &Path, name: &str, deck: &molgen::Dataset, generation: u64) -> PathBuf {
    let dict = AnyDictionary::Base(Box::new(
        DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(deck.iter())
        .unwrap(),
    ));
    let path = dir.join(name);
    let mut w = ShardedWriter::create(
        &path,
        dict,
        ShardPolicy::by_lines(64),
        WriterOptions::default(),
    )
    .unwrap();
    w.set_generation(generation);
    w.write(deck.as_bytes()).unwrap();
    w.finish().unwrap();
    path
}

// ---------------------------------------------------------------------------
// Framing: round-trip under arbitrary payloads
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any request survives encode → frame-read → decode bit-exactly.
    #[test]
    fn request_framing_round_trips(
        line in any::<u64>(),
        start in any::<u64>(),
        end in any::<u64>(),
        many in proptest::collection::vec(any::<u64>(), 0..50),
        path_bytes in proptest::collection::vec(0x20u8..0x7f, 0..100),
    ) {
        let path = String::from_utf8(path_bytes).unwrap();
        let reqs = [
            Request::Get { line },
            Request::GetRange { start, end },
            Request::GetMany { lines: many },
            Request::Stats,
            Request::Flip { path },
            Request::Shutdown,
        ];
        for req in reqs {
            let frame = req.encode();
            let mut cursor = std::io::Cursor::new(frame);
            let FrameRead::Frame(body) =
                protocol::read_frame(&mut cursor, protocol::MAX_REQUEST_FRAME).unwrap()
            else {
                panic!("frame expected");
            };
            prop_assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    /// Any lines response — arbitrary binary payloads included — survives
    /// the same trip.
    #[test]
    fn response_framing_round_trips(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..30),
    ) {
        let resp = Response::Lines(lines);
        let frame = resp.encode();
        let mut cursor = std::io::Cursor::new(frame);
        let FrameRead::Frame(body) =
            protocol::read_frame(&mut cursor, protocol::MAX_RESPONSE_FRAME).unwrap()
        else {
            panic!("frame expected");
        };
        prop_assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    /// Arbitrary garbage bodies never panic the decoder: they either
    /// happen to parse or come back as a typed protocol error.
    #[test]
    fn decoder_survives_arbitrary_bodies(body in proptest::collection::vec(any::<u8>(), 0..300)) {
        match Request::decode(&body) {
            Ok(_) => {}
            Err(ZsmilesError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error: {other}"),
        }
        match Response::decode(&body) {
            Ok(_) => {}
            Err(ZsmilesError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Hostile frames over real TCP: typed errors, never a panic or a hang
// ---------------------------------------------------------------------------

#[test]
fn hostile_frames_get_typed_errors_not_hangs() {
    let dir = tmpdir("hostile");
    let deck = molgen::Dataset::generate_mixed(100, 77);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.addr();

    let read_error_response = |stream: &mut TcpStream| {
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        match protocol::read_frame(stream, protocol::MAX_RESPONSE_FRAME).unwrap() {
            FrameRead::Frame(body) => match Response::decode(&body).unwrap() {
                Response::Error { code, message } => (code, message),
                other => panic!("expected an error response, got {other:?}"),
            },
            other => panic!("expected an error frame, got {other:?}"),
        }
    };

    // Oversized frame: a hostile length prefix is refused up front.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let (_, msg) = read_error_response(&mut s);
        assert!(msg.contains("oversized"), "got: {msg}");
        // And the server closed the connection afterwards.
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap_or(0), 0, "connection closed");
    }

    // Truncated frame: header promises 64 bytes, peer closes after 3.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let (_, msg) = read_error_response(&mut s);
        assert!(msg.contains("truncated"), "got: {msg}");
    }

    // Malformed body inside an intact frame: a typed error, and the
    // connection stays usable for a well-formed follow-up.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let junk = [0x6F, 0xDE, 0xAD, 0xBE, 0xEF]; // unknown opcode + noise
        s.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&junk).unwrap();
        let (_, msg) = read_error_response(&mut s);
        assert!(msg.contains("opcode"), "got: {msg}");
        s.write_all(&Request::Get { line: 0 }.encode()).unwrap();
        match protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME).unwrap() {
            FrameRead::Frame(body) => match Response::decode(&body).unwrap() {
                Response::Lines(lines) => assert_eq!(lines[0], deck.line(0)),
                other => panic!("connection unusable after bad body: {other:?}"),
            },
            other => panic!("connection unusable after bad body: {other:?}"),
        }
    }

    // Zero-length frame.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        let (_, msg) = read_error_response(&mut s);
        assert!(msg.contains("zero-length"), "got: {msg}");
    }

    // Out-of-range request: a typed error on a healthy connection.
    {
        let mut c = QueryClient::connect(addr).unwrap();
        let err = c.get(deck.len() as u64).unwrap_err();
        assert!(matches!(err, ZsmilesError::Protocol { .. }), "got: {err}");
        assert!(err.to_string().contains("out of range"), "got: {err}");
        // Still healthy:
        assert_eq!(c.get(3).unwrap(), deck.line(3));
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Concurrency: 8 clients, byte-identity against a direct DeckReader
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_read_byte_identical_lines() {
    run_concurrent_byte_identity(Executor::Pooled, "concurrent_pooled");
}

#[test]
fn concurrent_clients_read_byte_identical_lines_threaded() {
    run_concurrent_byte_identity(Executor::Threaded, "concurrent_threaded");
}

fn run_concurrent_byte_identity(executor: Executor, tag: &str) {
    let dir = tmpdir(tag);
    let deck = molgen::Dataset::generate_mixed(500, 123);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let direct = DeckReader::open(&zsm).unwrap();
    let handle = Server::start(
        &zsm,
        "127.0.0.1:0",
        ServeOptions {
            executor,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for worker in 0..8u64 {
            let direct = &direct;
            scope.spawn(move || {
                let mut c = QueryClient::connect(addr).unwrap();
                // A deterministic, worker-specific walk over the deck.
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(worker + 1);
                for _ in 0..60 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = x % 500;
                    assert_eq!(c.get(i).unwrap(), direct.get(i as usize).unwrap());
                }
                // Batched surfaces agree too.
                assert_eq!(
                    c.get_range(worker * 10, worker * 10 + 25).unwrap(),
                    direct
                        .get_range(worker as usize * 10..worker as usize * 10 + 25)
                        .unwrap()
                );
                let picks = [0u64, 499, 64, 63, 250, worker];
                let idx: Vec<usize> = picks.iter().map(|&p| p as usize).collect();
                assert_eq!(c.get_many(&picks).unwrap(), direct.get_many(&idx).unwrap());
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.generation, 0);
    assert_eq!(stats.lines, 500);
    assert!(stats.requests >= 8 * 62, "all requests counted");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Generation flips: atomic under concurrent load, cache retirement
// ---------------------------------------------------------------------------

/// The acceptance property: while a flip happens under concurrent reads,
/// every response is byte-identical to a direct read of generation A or
/// of generation B — never a torn mix, never a missing deck. Both decks
/// are then distinguishable per line, so a single byte comparison tells
/// which generation answered.
#[test]
fn generation_flip_is_atomic_under_concurrent_reads() {
    run_flip_atomicity(Executor::Pooled, "flip_pooled");
}

#[test]
fn generation_flip_is_atomic_under_concurrent_reads_threaded() {
    run_flip_atomicity(Executor::Threaded, "flip_threaded");
}

fn run_flip_atomicity(executor: Executor, tag: &str) {
    let dir = tmpdir(tag);
    let deck_a = molgen::Dataset::generate_mixed(300, 1);
    let deck_b = molgen::Dataset::generate_mixed(300, 2);
    let zsm_a = pack_deck(&dir, "a.zsm", &deck_a, 1);
    let zsm_b = pack_deck(&dir, "b.zsm", &deck_b, 2);
    let direct_a = DeckReader::open(&zsm_a).unwrap();
    let direct_b = DeckReader::open(&zsm_b).unwrap();

    let handle = Server::start(
        &zsm_a,
        "127.0.0.1:0",
        ServeOptions {
            executor,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    assert_eq!(handle.generation(), 1, "declared generation served");

    let flip_done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for worker in 0..8u64 {
            let (direct_a, direct_b, flip_done) = (&direct_a, &direct_b, &flip_done);
            scope.spawn(move || {
                let mut c = QueryClient::connect(addr).unwrap();
                let mut saw_b = false;
                for round in 0..200u64 {
                    let i = ((worker * 37 + round * 13) % 300) as usize;
                    let got = c.get(i as u64).unwrap();
                    let a = direct_a.get(i).unwrap();
                    let b = direct_b.get(i).unwrap();
                    assert!(
                        got == a || got == b,
                        "worker {worker} line {i}: torn response {:?}",
                        String::from_utf8_lossy(&got)
                    );
                    if got == b && a != b {
                        saw_b = true;
                    }
                    // Once the flip finished, only generation B may answer.
                    if flip_done.load(std::sync::atomic::Ordering::SeqCst) && a != b {
                        let after = c.get(i as u64).unwrap();
                        assert_eq!(after, b, "read after flip must be generation B");
                    }
                }
                saw_b
            });
        }
        // Flip mid-flight, from a separate client connection.
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut c = QueryClient::connect(addr).unwrap();
            let g = c.flip(zsm_b.to_str().unwrap()).unwrap();
            assert_eq!(g, 2, "flip lands on the declared generation");
            flip_done.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    });

    let stats = handle.stats();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.flips, 1);

    // A stale flip — back to generation 1 — is rejected with a typed
    // error and the served deck is untouched.
    let mut c = QueryClient::connect(addr).unwrap();
    let err = c.flip(zsm_a.to_str().unwrap()).unwrap_err();
    assert!(err.to_string().contains("not newer"), "got: {err}");
    assert_eq!(handle.generation(), 2);
    // So is a flip to a nonexistent archive.
    assert!(c.flip(dir.join("nope.zsm").to_str().unwrap()).is_err());
    assert_eq!(handle.generation(), 2);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// With the server forced onto a private block cache, a flip retires the
/// old generation's blocks: the eviction-independent `retired` counter
/// rises and the server reports the count in its stats.
#[test]
fn flip_retires_old_generation_blocks_from_the_cache() {
    let dir = tmpdir("retire");
    let deck = molgen::Dataset::generate_mixed(400, 5);
    let zsm_a = pack_deck(&dir, "a.zsm", &deck, 1);
    let zsm_b = pack_deck(&dir, "b.zsm", &deck, 2);

    let cache = Arc::new(BlockCache::new(4096, 4 << 20));
    let handle = Server::start(
        &zsm_a,
        "127.0.0.1:0",
        ServeOptions {
            cache: Some(Arc::clone(&cache)),
            ..Default::default()
        },
    )
    .unwrap();

    // Touch the whole deck so generation 1 populates the cache.
    let mut c = QueryClient::connect(handle.addr()).unwrap();
    c.get_range(0, 400).unwrap();
    let resident_before = cache.stats().resident_blocks;
    assert!(resident_before > 0, "reads populated the private cache");
    assert_eq!(cache.stats().retired, 0);

    // Flip: the old generation drains (no in-flight readers here), and
    // its blocks are forgotten from the pool.
    assert_eq!(c.flip(zsm_b.to_str().unwrap()).unwrap(), 2);
    let retired = cache.stats().retired;
    assert!(
        retired > 0,
        "retirement forgot the old generation's blocks (retired {retired})"
    );
    assert_eq!(
        cache.stats().evictions,
        0,
        "retirement is not budget eviction"
    );
    assert_eq!(handle.stats().retired_blocks, retired);

    // The new generation still answers correctly from the same cache.
    assert_eq!(
        c.get(7).unwrap(),
        DeckReader::open_with(
            &zsm_b,
            &DeckOptions {
                cache: Some(Arc::clone(&cache))
            }
        )
        .unwrap()
        .get(7)
        .unwrap()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The wire shutdown request stops the server; `wait()` returns.
#[test]
fn wire_shutdown_stops_the_server() {
    let dir = tmpdir("shutdown");
    let deck = molgen::Dataset::generate_mixed(50, 9);
    let zsm = pack_deck(&dir, "deck.zsm", &deck, 0);
    let handle = Server::start(&zsm, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.addr();

    let mut c = QueryClient::connect(addr).unwrap();
    assert_eq!(c.get(0).unwrap(), deck.line(0));
    c.shutdown().unwrap();
    handle.wait(); // returns because the wire request stopped the server

    // New connections are refused (or reset) once the listener is gone.
    assert!(QueryClient::connect(addr)
        .and_then(|mut c| c.get(0))
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
