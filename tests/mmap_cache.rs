//! The saturated read path, end to end: `MmapSource` must be
//! byte-identical (and error-identical) to `FileSource` for both
//! dictionary flavours, and the shared sharded `BlockCache` must serve
//! concurrent readers the exact same bytes it was loaded with — the
//! acceptance properties of the zero-copy / shared-cache redesign.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::source::{ArchiveSource, CachedSource, FileSource, MmapSource};
use zsmiles_core::{Archive, ArchiveReader, BlockCache, DictBuilder, WideDictBuilder};

/// Train either dictionary flavour on the deck (preprocess off, so round
/// trips are byte-exact).
fn dict_for(deck: &molgen::Dataset, wide_size: usize) -> AnyDictionary {
    let base = DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    };
    if wide_size == 0 {
        AnyDictionary::Base(Box::new(base.train(deck.iter()).unwrap()))
    } else {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder { base, wide_size }
                .train(deck.iter())
                .unwrap(),
        ))
    }
}

fn tmpfile(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsmiles_it_mmap_{tag}_{}.zsa", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A reader over `MmapSource` returns byte-identical lines, ranges
    /// and batched iterations to a reader over `FileSource`, for both
    /// engine flavours and arbitrary generated decks.
    #[test]
    fn mmap_reader_matches_file_reader(
        seed in 0u64..10_000,
        lines in 1usize..60,
        wide_size in prop_oneof![Just(0usize), Just(48usize)],
        probe in 0usize..1_000,
    ) {
        let deck = molgen::Dataset::generate_mixed(lines, seed);
        let archive = Archive::pack(dict_for(&deck, wide_size), deck.as_bytes(), 2);
        let path = tmpfile(&format!("prop_{seed}_{lines}_{wide_size}"));
        archive.save(&path).unwrap();

        let mapped = ArchiveReader::from_source(MmapSource::open(&path).unwrap()).unwrap();
        let file = ArchiveReader::open(&path).unwrap();

        prop_assert_eq!(mapped.len(), file.len());
        prop_assert_eq!(mapped.flavor(), file.flavor());
        mapped.verify().unwrap();

        let i = probe % deck.len();
        prop_assert_eq!(mapped.get(i).unwrap(), file.get(i).unwrap());
        prop_assert_eq!(
            mapped.compressed_line(i).unwrap(),
            file.compressed_line(i).unwrap()
        );
        let hi = (i + 7).min(deck.len());
        prop_assert_eq!(
            mapped.get_range(i..hi).unwrap(),
            file.get_range(i..hi).unwrap()
        );
        let streamed: Result<Vec<Vec<u8>>, _> = mapped.lines_batched(97).collect();
        let streamed = streamed.unwrap();
        prop_assert_eq!(streamed.len(), deck.len());
        prop_assert_eq!(streamed[i].as_slice(), deck.line(i));

        std::fs::remove_file(&path).ok();
    }
}

/// Error parity: every failure `FileSource` reports, `MmapSource` reports
/// too — truncated footers never parse through either source, and reads
/// past EOF are the same typed error, for both dictionary flavours.
#[test]
fn mmap_and_file_sources_agree_on_error_cases() {
    let deck = molgen::Dataset::generate_mixed(20, 5);
    for wide_size in [0usize, 32] {
        let archive = Archive::pack(dict_for(&deck, wide_size), deck.as_bytes(), 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();

        // Truncated footer: every truncation of the trailer region fails
        // identically through the mapped and the file-backed source.
        for cut in 1..24 {
            let path = tmpfile(&format!("trunc_{wide_size}_{cut}"));
            std::fs::write(&path, &blob[..blob.len() - cut]).unwrap();
            let via_mmap = ArchiveReader::from_source(MmapSource::open(&path).unwrap());
            let via_file = ArchiveReader::open(&path);
            assert!(via_mmap.is_err(), "wide={wide_size} cut={cut} (mmap)");
            assert!(via_file.is_err(), "wide={wide_size} cut={cut} (file)");
            std::fs::remove_file(&path).ok();
        }

        // Read past EOF is the same typed error from both sources.
        let path = tmpfile(&format!("eof_{wide_size}"));
        std::fs::write(&path, &blob).unwrap();
        let mapped = MmapSource::open(&path).unwrap();
        let file = FileSource::open(&path).unwrap();
        assert_eq!(mapped.len(), file.len());
        let len = mapped.len();
        for (offset, want) in [(len, 1usize), (len - 3, 8), (len + 10, 4)] {
            let me = mapped.read_range(offset, want).unwrap_err();
            let fe = file.read_range(offset, want).unwrap_err();
            assert!(
                matches!(me, zsmiles_core::ZsmilesError::SourceOutOfBounds { .. }),
                "mmap offset={offset} want={want}: {me:?}"
            );
            assert!(
                matches!(fe, zsmiles_core::ZsmilesError::SourceOutOfBounds { .. }),
                "file offset={offset} want={want}: {fe:?}"
            );
            assert_eq!(
                me.to_string(),
                fe.to_string(),
                "offset={offset} want={want}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The shared-cache stress test: eight threads hammer one undersized
/// `BlockCache` through cached readers — every fetched line must be
/// byte-identical to the deck under heavy eviction and cross-thread
/// block sharing.
#[test]
fn eight_threads_hammer_one_shared_cache_with_byte_identity() {
    let deck = molgen::Dataset::generate_mixed(400, 2024);
    let archive = Archive::pack(dict_for(&deck, 32), deck.as_bytes(), 2);
    let path = tmpfile("stress");
    archive.save(&path).unwrap();

    // Tiny blocks and a capacity far below the archive size, so the
    // threads continuously evict each other's blocks.
    let cache = Arc::new(BlockCache::new(512, 4 << 10));
    let reader = ArchiveReader::from_source(CachedSource::with_cache(
        FileSource::open(&path).unwrap(),
        Arc::clone(&cache),
    ))
    .unwrap();
    let lines = reader.len();
    assert_eq!(lines, deck.len());

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reader = &reader;
            let deck = &deck;
            scope.spawn(move || {
                // Each thread walks the deck at a different stride so the
                // access patterns interleave instead of marching in step.
                let stride = 2 * t + 1;
                for round in 0..ROUNDS {
                    for k in 0..lines {
                        let i = (k * stride + round + t) % lines;
                        let got = reader.get(i).unwrap();
                        assert_eq!(got, deck.line(i), "thread {t} round {round} line {i}");
                    }
                }
            });
        }
    });

    // Every fetch went through the shared cache, rereads hit, and the
    // undersized pool really did evict.
    let (hits, misses) = (reader.source().hits(), reader.source().misses());
    assert!(hits > 0, "rereads must hit the shared cache");
    assert!(misses > 0, "cold blocks must miss");
    let stats = cache.stats();
    assert_eq!(
        stats.hits, hits,
        "every cache hit flowed through this source"
    );
    assert!(
        stats.misses <= misses,
        "per-source misses additionally count block-sized bypasses"
    );
    assert!(stats.evictions > 0, "the undersized pool must evict");
    assert!(
        stats.resident_bytes <= 4 << 10,
        "residency stays within capacity"
    );

    std::fs::remove_file(&path).ok();
}
