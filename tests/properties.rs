//! Property-based tests over the whole stack: invariants that must hold
//! for *arbitrary* inputs, not just the fixtures unit tests use.

use proptest::prelude::*;
use zsmiles_core::{Compressor, Decompressor, DictBuilder, Dictionary, Prepopulation};

/// An arbitrary "line": any bytes except newline. The compressor must
/// round-trip garbage too (real decks contain header lines, names, typos).
fn arb_line() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        any::<u8>().prop_filter("no newline", |&b| b != b'\n'),
        0..200,
    )
}

/// An arbitrary SMILES-ish line over the SMILES alphabet (higher pattern
/// hit rate than raw bytes).
fn arb_smilesish() -> impl Strategy<Value = Vec<u8>> {
    let alphabet = smiles::alphabet::SMILES_ALPHABET;
    proptest::collection::vec(0..alphabet.len(), 0..120)
        .prop_map(move |idxs| idxs.into_iter().map(|i| alphabet[i]).collect())
}

fn test_dict() -> Dictionary {
    let corpus: Vec<&[u8]> = [
        b"COc1cc(C=O)ccc1O".as_slice(),
        b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
        b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        b"CCN(CC)CC",
        b"c1ccc2ccccc2c1",
    ]
    .repeat(10);
    DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    }
    .train(corpus)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compression followed by decompression is the identity on arbitrary
    /// bytes (no preprocessing).
    #[test]
    fn compress_roundtrip_arbitrary_bytes(line in arb_line()) {
        let dict = test_dict();
        let mut c = Compressor::new(&dict);
        let mut z = Vec::new();
        c.compress_line(&line, &mut z);
        let mut back = Vec::new();
        Decompressor::new(&dict).decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    /// The no-expansion guarantee: lines over the SMILES alphabet never
    /// grow under a SMILES-alphabet-prepopulated dictionary.
    #[test]
    fn no_expansion_on_alphabet_lines(line in arb_smilesish()) {
        let dict = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let mut c = Compressor::new(&dict).with_preprocess(false);
        let mut z = Vec::new();
        let (n, _) = c.compress_line(&line, &mut z);
        prop_assert!(n <= line.len());
    }

    /// Compressed output never contains a newline (separability) and never
    /// contains control bytes other than via escapes (readability).
    #[test]
    fn output_stays_displayable(line in arb_smilesish()) {
        let dict = test_dict();
        let mut c = Compressor::new(&dict);
        let mut z = Vec::new();
        c.compress_line(&line, &mut z);
        let mut i = 0;
        while i < z.len() {
            let b = z[i];
            prop_assert_ne!(b, b'\n');
            if b == b' ' {
                i += 2; // escape marker + raw literal (may be anything)
            } else {
                prop_assert!((0x21..=0x7E).contains(&b) || b >= 0x80, "code byte {:#x}", b);
                i += 1;
            }
        }
    }

    /// Both shortest-path engines agree on arbitrary input.
    #[test]
    fn engines_agree(line in arb_line()) {
        use zsmiles_core::sp::{encode_line, SpScratch};
        use zsmiles_core::SpAlgorithm;
        let dict = test_dict();
        let mut s1 = SpScratch::new();
        let mut s2 = SpScratch::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ca = encode_line(dict.trie(), &line, SpAlgorithm::BackwardDp, &mut s1, &mut a);
        let cb = encode_line(dict.trie(), &line, SpAlgorithm::Dijkstra, &mut s2, &mut b);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(a, b);
    }

    /// The optimal encoder never does worse than greedy longest-match.
    #[test]
    fn optimal_never_worse_than_greedy(line in arb_smilesish()) {
        let dict = test_dict();
        let trie = dict.trie();
        let mut greedy = 0usize;
        let mut i = 0usize;
        while i < line.len() {
            match trie.longest_match_at(&line, i) {
                Some((_, len)) => { greedy += 1; i += len; }
                None => { greedy += 2; i += 1; }
            }
        }
        let mut scratch = zsmiles_core::sp::SpScratch::new();
        let optimal = zsmiles_core::sp::encode_cost(
            trie, &line, zsmiles_core::SpAlgorithm::BackwardDp, &mut scratch);
        prop_assert!(optimal <= greedy, "optimal {} > greedy {}", optimal, greedy);
    }

    /// Ring-ID preprocessing preserves the molecule for arbitrary
    /// generated structures (idempotence too).
    #[test]
    fn preprocess_preserves_molecules(seed in 0u64..5000) {
        let ds = molgen::Dataset::generate(molgen::profiles::MEDIATE, 3, seed);
        for line in ds.iter() {
            let pp = smiles::preprocess(line).unwrap();
            let a = smiles::parser::parse(line).unwrap();
            let b = smiles::parser::parse(&pp).unwrap();
            prop_assert_eq!(a.signature(), b.signature());
            let pp2 = smiles::preprocess(&pp).unwrap();
            prop_assert_eq!(&pp, &pp2, "idempotent");
        }
    }

    /// Every generated molecule is valid SMILES across all profiles.
    #[test]
    fn generator_validity(seed in 0u64..2000) {
        for profile in [molgen::profiles::GDB17, molgen::profiles::MEDIATE,
                        molgen::profiles::EXSCALATE] {
            let ds = molgen::Dataset::generate(profile, 2, seed);
            for line in ds.iter() {
                prop_assert!(smiles::validate::full_check(line).is_ok(),
                    "{}: {}", profile.name, String::from_utf8_lossy(line));
            }
        }
    }

    /// Composition invariants on generated molecules: the Hill formula is
    /// stable under ring-ID preprocessing (same molecule, same formula),
    /// and the molar mass is consistent with the atom tally.
    #[test]
    fn formula_invariants(seed in 0u64..3000) {
        let ds = molgen::Dataset::generate_mixed(3, seed);
        for line in ds.iter() {
            let mol = smiles::parser::parse(line).unwrap();
            let comp = smiles::Composition::of(&mol);
            let f1 = comp.hill_formula();
            prop_assert!(!f1.is_empty());

            let pp = smiles::preprocess(line).unwrap();
            let f2 = smiles::molecular_formula(&smiles::parser::parse(&pp).unwrap());
            prop_assert_eq!(&f1, &f2, "preprocessing must not change the formula");

            if comp.wildcards == 0 {
                let mass = comp.molar_mass().unwrap();
                // Carbon is the lightest common heavy atom except B; every
                // heavy atom weighs at least ~10.8 u, every H ~1 u.
                let lower = comp.heavy_atoms() as f64 * 10.8 + comp.count("H") as f64;
                prop_assert!(mass >= lower, "mass {} < floor {}", mass, lower);
            }
        }
    }

    /// Screening is deterministic for any worker count and any deck.
    #[test]
    fn screening_worker_invariance(seed in 0u64..500, workers in 1usize..9) {
        let ds = molgen::Dataset::generate_mixed(24, seed);
        let pocket = vscreen::Pocket::from_seed(seed ^ 0xABCD);
        let serial = vscreen::screen(&ds, &pocket);
        let par = vscreen::screen_parallel(&ds, &pocket, workers);
        prop_assert_eq!(serial, par);
    }

    /// The wide codec round-trips generated decks byte-exactly without
    /// preprocessing, whatever the trained wide size.
    #[test]
    fn wide_roundtrip_on_generated_decks(seed in 0u64..300, wide_size in 0usize..96) {
        let ds = molgen::Dataset::generate_mixed(40, seed);
        let dict = zsmiles_core::WideDictBuilder {
            base: DictBuilder { min_count: 2, preprocess: false, ..Default::default() },
            wide_size,
        }
        .train(ds.iter())
        .unwrap();
        let mut z = Vec::new();
        zsmiles_core::WideCompressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);
        let mut back = Vec::new();
        zsmiles_core::WideDecompressor::new(&dict).decompress_buffer(&z, &mut back).unwrap();
        prop_assert_eq!(back, ds.as_bytes());
    }

    /// Baseline codecs round-trip arbitrary bytes.
    #[test]
    fn baselines_roundtrip(line in arb_line()) {
        // bzip-like (whole-buffer)
        let z = textcomp::bzip::compress(&line);
        prop_assert_eq!(textcomp::bzip::decompress(&z).unwrap(), line.clone());
        // FSST (table trained on the line itself — worst case, tiny sample)
        let fsst = textcomp::fsst::Fsst::train(&line);
        let mut zf = Vec::new();
        fsst.compress_line(&line, &mut zf);
        let mut back = Vec::new();
        fsst.decompress_line(&zf, &mut back).unwrap();
        prop_assert_eq!(back, line.clone());
        // SHOCO
        let shoco = textcomp::shoco::ShocoModel::train(&line);
        let mut zs = Vec::new();
        shoco.compress_line(&line, &mut zs);
        let mut back = Vec::new();
        shoco.decompress_line(&zs, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }
}
