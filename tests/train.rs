//! Trained-dictionary properties: dictionaries produced by the
//! `zsmiles_core::train` subsystem must flow through encoders, archives
//! and sharded decks with zero special-casing — and reproducibly.

use proptest::prelude::*;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::train::{BaseBuilder, DictBuilder, TrainCorpus, WideBuilder};
use zsmiles_core::{
    ArchiveReader, ArchiveWriter, InMemorySink, InMemorySource, ShardPolicy, ShardedReader,
    ShardedWriter, TrainOptions, WriterOptions,
};

/// A SMILES-ish line over the SMILES alphabet (high pattern hit rate).
fn arb_smilesish(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    let alphabet = smiles::alphabet::SMILES_ALPHABET;
    proptest::collection::vec(0..alphabet.len(), 0..max_len)
        .prop_map(move |idxs| idxs.into_iter().map(|i| alphabet[i]).collect())
}

/// A training corpus: a handful of distinct lines, each repeated enough
/// to clear `min_count`.
fn arb_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(arb_smilesish(60), 2..8).prop_map(|lines| {
        let mut corpus = Vec::new();
        for _ in 0..6 {
            corpus.extend(lines.iter().cloned());
        }
        corpus
    })
}

fn opts() -> TrainOptions {
    TrainOptions {
        min_count: 2,
        preprocess: false, // byte-identity round trips
        max_candidates: 2_000,
        ..Default::default()
    }
}

/// Train both flavours on the same corpus.
fn trained_pair(corpus: &[Vec<u8>]) -> Option<(AnyDictionary, AnyDictionary)> {
    let tc = TrainCorpus::from_lines(corpus.iter());
    let base = BaseBuilder { opts: opts() }
        .train(&tc)
        .ok()?
        .into_dictionary()
        .unwrap();
    let wide = WideBuilder {
        opts: opts(),
        wide_size: 64,
    }
    .train(&tc)
    .ok()?
    .into_dictionary()
    .unwrap();
    Some((base, wide))
}

/// A deck buffer with interior blank lines sprinkled in.
fn deck_with_blanks(corpus: &[Vec<u8>], blanks: &[usize]) -> Vec<u8> {
    let mut buf = Vec::new();
    for (i, line) in corpus.iter().enumerate() {
        if blanks.contains(&i) {
            buf.push(b'\n'); // interior blank line
        }
        buf.extend_from_slice(line);
        buf.push(b'\n');
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any trained dictionary round-trips encode/decode byte-identically,
    /// both flavours, including decks with interior blank lines.
    #[test]
    fn trained_dictionaries_round_trip_byte_identically(
        corpus in arb_corpus(),
        blanks in proptest::collection::vec(0usize..12, 0..3),
    ) {
        // Random corpora may have no frequent substrings at all; an
        // EmptyTrainingSet is a legitimate outcome, not a failure.
        let Some((base, wide)) = trained_pair(&corpus) else {
            return;
        };
        let input = deck_with_blanks(&corpus, &blanks);
        // The buffer loops document that empty lines are skipped, so the
        // round trip restores the blank-stripped deck.
        let canonical: Vec<u8> = input
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        for dict in [&base, &wide] {
            let (z, cs) = dict.compress_parallel(&input, 3);
            let (back, ds) = dict.decompress_parallel(&z, 2).unwrap();
            prop_assert_eq!(&back, &canonical, "flavour {:?}", dict.flavor());
            prop_assert_eq!(cs.lines, ds.lines);
            // Per-line access agrees with the buffer loop: the first
            // emitted line is the first non-empty input line.
            if let Some(want) = canonical.split(|&b| b == b'\n').next() {
                let first = z.split(|&b| b == b'\n').next().unwrap();
                let mut one = Vec::new();
                dict.decompress_line(first, &mut one).unwrap();
                prop_assert_eq!(one.as_slice(), want);
            }
        }
    }

    /// Training is a pure function of (corpus, options): two runs write
    /// byte-identical `.dct` serializations, and a reloaded dictionary
    /// decodes streams of the original.
    #[test]
    fn training_is_deterministic_and_reload_compatible(corpus in arb_corpus()) {
        let Some((base, wide)) = trained_pair(&corpus) else {
            return;
        };
        let Some((base2, wide2)) = trained_pair(&corpus) else {
            return;
        };
        for (a, b) in [(&base, &base2), (&wide, &wide2)] {
            let mut ba = Vec::new();
            a.write(&mut ba).unwrap();
            let mut bb = Vec::new();
            b.write(&mut bb).unwrap();
            prop_assert_eq!(&ba, &bb, "two runs, one dictionary");
            // Save/load round trip decodes the original's stream.
            let reloaded = AnyDictionary::read(&ba).unwrap();
            let mut z = Vec::new();
            a.as_dyn().boxed_encoder().encode_line(&corpus[0], &mut z);
            let mut back = Vec::new();
            reloaded.decompress_line(&z, &mut back).unwrap();
            prop_assert_eq!(back.as_slice(), corpus[0].as_slice());
        }
    }

    /// A trained dictionary flows through the out-of-core write path and
    /// is read back by `ArchiveReader` and `ShardedReader` unchanged:
    /// same embedded dictionary bytes, same lines.
    #[test]
    fn trained_dict_archives_read_back_unchanged(
        corpus in arb_corpus(),
        blanks in proptest::collection::vec(0usize..12, 0..2),
        shard_lines in 3u64..10,
    ) {
        let Some((base, wide)) = trained_pair(&corpus) else {
            return;
        };
        let input = deck_with_blanks(&corpus, &blanks);
        let expected: Vec<&[u8]> = input
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        for dict in [base, wide] {
            let mut dict_bytes = Vec::new();
            dict.write(&mut dict_bytes).unwrap();

            // Single-file archive through the streaming writer.
            let mut w = ArchiveWriter::with_options(
                InMemorySink::new(),
                dict.clone(),
                WriterOptions { threads: 2, ..Default::default() },
            )
            .unwrap();
            w.write(&input).unwrap();
            let (sink, info) = w.finish().unwrap();
            prop_assert_eq!(info.lines, expected.len());
            let reader =
                ArchiveReader::from_source(InMemorySource::new(sink.into_bytes())).unwrap();
            let mut embedded = Vec::new();
            reader.dictionary().write(&mut embedded).unwrap();
            prop_assert_eq!(&embedded, &dict_bytes, "embedded dictionary unchanged");
            for (i, line) in expected.iter().enumerate() {
                prop_assert_eq!(&reader.get(i).unwrap(), line);
            }

            // Sharded layout with the same dictionary in every shard.
            let dir = std::env::temp_dir().join(format!(
                "ztrain_shard_{}_{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let manifest = dir.join("deck.zsm");
            let mut sw = ShardedWriter::create(
                &manifest,
                dict.clone(),
                ShardPolicy::by_lines(shard_lines),
                WriterOptions { threads: 2, ..Default::default() },
            )
            .unwrap();
            sw.write(&input).unwrap();
            let sinfo = sw.finish().unwrap();
            prop_assert_eq!(sinfo.lines as usize, expected.len());
            let sharded = ShardedReader::open(&manifest).unwrap();
            let mut embedded = Vec::new();
            sharded.dictionary().write(&mut embedded).unwrap();
            prop_assert_eq!(&embedded, &dict_bytes, "sharded dictionary unchanged");
            let got = sharded.get_range(0..expected.len()).unwrap();
            for (line, want) in got.iter().zip(&expected) {
                prop_assert_eq!(&line.as_slice(), want);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
