//! The out-of-core write path, end to end: streaming `ArchiveWriter`
//! memory bounds, and sharded `.zsm` archives that are line-for-line
//! byte-identical to single-file packs — the acceptance properties of the
//! write-side redesign.

use proptest::prelude::*;
use std::path::PathBuf;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{
    Archive, ArchiveReader, ArchiveWriter, CountingSink, DeckReader, DictBuilder, InMemorySink,
    ShardPolicy, ShardedReader, ShardedWriter, WideDictBuilder, WriterOptions,
};

fn dict_for(deck: &molgen::Dataset, wide_size: usize) -> AnyDictionary {
    let base = DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    };
    if wide_size == 0 {
        AnyDictionary::Base(Box::new(base.train(deck.iter()).unwrap()))
    } else {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder { base, wide_size }
                .train(deck.iter())
                .unwrap(),
        ))
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsmiles_it_shard_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Inject a blank line after every `every`-th line (0 = none): sharding
/// must agree with the single-file layout about skipped blanks.
fn with_blank_lines(deck: &[u8], every: usize) -> Vec<u8> {
    if every == 0 {
        return deck.to_vec();
    }
    let mut out = Vec::with_capacity(deck.len() + deck.len() / every + 2);
    for (i, line) in deck.split(|&b| b == b'\n').enumerate() {
        if line.is_empty() {
            continue;
        }
        out.extend_from_slice(line);
        out.push(b'\n');
        if (i + 1) % every == 0 {
            out.push(b'\n');
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A sharded pack at an arbitrary shard budget is line-for-line
    /// byte-identical to a single-file pack of the same deck, for both
    /// dictionary flavours, with interior blank lines in the input, and
    /// including budgets that land a shard boundary exactly on the last
    /// line (`lines % budget == 0` is inside the sampled space).
    #[test]
    fn sharded_pack_identical_to_single_file_pack(
        seed in 0u64..10_000,
        lines in 1usize..50,
        wide_size in prop_oneof![Just(0usize), Just(32usize)],
        budget_lines in 1u64..25,
        by_bytes in prop_oneof![Just(false), Just(true)],
        blank_every in 0usize..5,
    ) {
        let deck = molgen::Dataset::generate_mixed(lines, seed);
        let input = with_blank_lines(deck.as_bytes(), blank_every);
        let dict = dict_for(&deck, wide_size);

        // Reference: the in-memory single-file pack.
        let single = Archive::pack(dict.clone(), &input, 2);
        prop_assert_eq!(single.len(), deck.len());

        // Sharded pack at the sampled budget.
        let dir = tmpdir(&format!("prop_{seed}_{lines}_{wide_size}_{budget_lines}_{blank_every}"));
        let policy = if by_bytes {
            // A byte budget in the same ballpark as the line budget.
            ShardPolicy::by_bytes(budget_lines * 24)
        } else {
            ShardPolicy::by_lines(budget_lines)
        };
        let mut w = ShardedWriter::create(
            &dir.join("deck.zsm"),
            dict,
            policy,
            WriterOptions { threads: 2, batch_bytes: 96 },
        ).unwrap();
        for chunk in input.chunks(13) {
            w.write(chunk).unwrap();
        }
        let info = w.finish().unwrap();
        prop_assert_eq!(info.lines as usize, deck.len());
        if !by_bytes && (deck.len() as u64).is_multiple_of(budget_lines) {
            // Boundary exactly on the last line: no trailing empty shard.
            prop_assert_eq!(
                info.shards.len() as u64,
                (deck.len() as u64 / budget_lines).max(1)
            );
        }

        let sharded = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
        prop_assert_eq!(sharded.len(), single.len());
        prop_assert_eq!(sharded.flavor(), single.flavor());
        for i in 0..deck.len() {
            prop_assert_eq!(
                sharded.compressed_line(i).unwrap(),
                single.compressed_line(i).unwrap().to_vec(),
                "line {} compressed bytes", i
            );
            prop_assert_eq!(sharded.get(i).unwrap(), single.get(i).unwrap(), "line {}", i);
        }
        // Batched surfaces agree too.
        let mid = deck.len() / 2;
        prop_assert_eq!(
            sharded.get_range(mid..deck.len()).unwrap(),
            single.get_range(mid..deck.len()).unwrap()
        );
        let mut out = Vec::new();
        sharded.unpack_to(&mut out, 2, 512).unwrap();
        let (expect, _) = single.unpack(1).unwrap();
        prop_assert_eq!(out, expect);

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance property of the write-path redesign: a deck of ≥100k
/// lines streams through the writer while the writer's buffered payload
/// stays under a fixed bound — and the resulting sharded manifest reads
/// byte-identically to the single-file pack of the same deck.
#[test]
fn writer_packs_100k_lines_in_bounded_memory_and_shards_match_single_file() {
    // ~2.3 MB of deck: far more than the writer's 64 KiB batch budget.
    let patterns: [&[u8]; 6] = [
        b"COc1cc(C=O)ccc1O",
        b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
        b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        b"CCN(CC)CC",
        b"CC(=O)Oc1ccccc1C(=O)O",
        b"c1ccc2c(c1)cccc2N",
    ];
    const LINES: usize = 100_000;
    let mut input = Vec::new();
    let mut expected_lines: Vec<&[u8]> = Vec::with_capacity(LINES);
    for i in 0..LINES {
        let line = patterns[i % patterns.len()];
        input.extend_from_slice(line);
        input.push(b'\n');
        expected_lines.push(line);
        if i % 97 == 0 {
            input.push(b'\n'); // interior blank lines, skipped everywhere
        }
    }
    let dict = {
        let base = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        };
        AnyDictionary::Base(Box::new(
            base.train(patterns.iter().copied().cycle().take(64))
                .unwrap(),
        ))
    };

    // Single-file pack through a metering sink with a 64 KiB batch
    // budget: the deck (and container) are megabytes, the writer's
    // buffering must stay under a fixed 4x-budget bound.
    const BATCH: usize = 64 << 10;
    let mut w = ArchiveWriter::with_options(
        CountingSink::new(InMemorySink::new()),
        dict.clone(),
        WriterOptions {
            threads: 2,
            batch_bytes: BATCH,
        },
    )
    .unwrap();
    for chunk in input.chunks(50_000) {
        w.write(chunk).unwrap();
    }
    let (sink, info) = w.finish().unwrap();
    assert_eq!(info.lines, LINES);
    assert!(
        info.payload_bytes as usize > 4 * BATCH,
        "the deck is larger than the writer's memory budget ({} payload bytes)",
        info.payload_bytes
    );
    assert!(
        info.peak_buffered_bytes <= 4 * BATCH,
        "peak buffered payload {} exceeds the fixed bound {}",
        info.peak_buffered_bytes,
        4 * BATCH
    );
    assert!(
        sink.appends() > 10,
        "payload streamed out across many spans"
    );
    assert_eq!(sink.patches(), 1, "one header patch at finalize");
    let single_bytes = sink.into_inner().into_bytes();
    assert_eq!(single_bytes.len() as u64, info.container_bytes);

    // The metered streaming pack equals the in-memory pack byte-for-byte.
    let reference = Archive::pack(dict.clone(), &input, 2);
    let mut reference_bytes = Vec::new();
    reference.write_to(&mut reference_bytes).unwrap();
    assert_eq!(single_bytes, reference_bytes);

    // Sharded pack of the same deck: 10k lines per shard.
    let dir = tmpdir("acceptance");
    let mut sw = ShardedWriter::create(
        &dir.join("deck.zsm"),
        dict,
        ShardPolicy::by_lines(10_000),
        WriterOptions {
            threads: 2,
            batch_bytes: BATCH,
        },
    )
    .unwrap();
    for chunk in input.chunks(50_000) {
        sw.write(chunk).unwrap();
    }
    let sinfo = sw.finish().unwrap();
    assert_eq!(sinfo.lines as usize, LINES);
    assert_eq!(sinfo.shards.len(), 10);
    assert!(sinfo.peak_buffered_bytes <= 4 * BATCH);

    // ShardedReader vs ArchiveReader over the single-file pack:
    // byte-identical gets (across shard boundaries) and unpacks.
    let single = ArchiveReader::from_source(single_bytes.as_slice()).unwrap();
    let sharded = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
    assert_eq!(sharded.len(), single.len());
    for i in [0usize, 9_999, 10_000, 10_001, 49_999, 50_000, 99_999] {
        assert_eq!(sharded.get(i).unwrap(), single.get(i).unwrap(), "line {i}");
        assert_eq!(sharded.get(i).unwrap(), expected_lines[i], "line {i}");
        assert_eq!(
            sharded.compressed_line(i).unwrap(),
            single.compressed_line(i).unwrap(),
            "line {i}"
        );
    }
    assert_eq!(
        sharded.get_range(9_990..10_010).unwrap(),
        single.get_range(9_990..10_010).unwrap()
    );
    let mut a = Vec::new();
    sharded.unpack_to(&mut a, 2, 1 << 20).unwrap();
    let mut b = Vec::new();
    single.unpack_to(&mut b, 2, 1 << 20).unwrap();
    assert_eq!(a, b, "sharded unpack == single-file unpack");

    // And both equal the deck minus its blank lines.
    let expect: Vec<u8> = expected_lines
        .iter()
        .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
        .collect();
    assert_eq!(a, expect);

    // The layout dispatch serves the same deck from either file.
    let via_manifest = DeckReader::open(&dir.join("deck.zsm")).unwrap();
    assert_eq!(via_manifest.len(), LINES);
    assert_eq!(via_manifest.shard_count(), 10);
    assert_eq!(via_manifest.get(10_000).unwrap(), expected_lines[10_000]);

    std::fs::remove_dir_all(&dir).ok();
}

/// Every file a sharded pack produces, as `(name, bytes)` in name order.
fn dir_snapshot(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// The acceptance property of cross-shard parallel packing: `--threads N`
/// must be invisible in the output. Serial (threads=1) and parallel
/// (threads=3, threads=7) packs of the same deck — with interior blank
/// lines and both dictionary flavours — produce byte-identical manifests
/// and byte-identical shard files.
#[test]
fn parallel_sharded_pack_is_byte_identical_to_serial_across_thread_counts() {
    let deck = molgen::Dataset::generate_mixed(61, 314);
    let input = with_blank_lines(deck.as_bytes(), 4);

    for wide_size in [0usize, 32] {
        let dict = dict_for(&deck, wide_size);
        let mut snapshots = Vec::new();
        for threads in [1usize, 3, 7] {
            let dir = tmpdir(&format!("par_{wide_size}_{threads}"));
            let mut w = ShardedWriter::create(
                &dir.join("deck.zsm"),
                dict.clone(),
                ShardPolicy::by_lines(17),
                WriterOptions {
                    threads,
                    batch_bytes: 96,
                },
            )
            .unwrap();
            // Awkward chunk granularity: writes split lines mid-byte.
            for chunk in input.chunks(13) {
                w.write(chunk).unwrap();
            }
            let info = w.finish().unwrap();
            assert_eq!(info.lines as usize, deck.len(), "threads={threads}");

            // The pack still reads back line-for-line before comparison.
            let reader = ShardedReader::open(&dir.join("deck.zsm")).unwrap();
            assert_eq!(reader.len(), deck.len());
            for i in [0usize, 16, 17, deck.len() - 1] {
                assert_eq!(
                    reader.get(i).unwrap(),
                    deck.line(i),
                    "wide={wide_size} threads={threads} line {i}"
                );
            }
            drop(reader);

            snapshots.push((threads, dir_snapshot(&dir)));
            std::fs::remove_dir_all(&dir).ok();
        }

        let (_, serial) = &snapshots[0];
        assert!(serial.len() > 2, "the deck must cut into multiple shards");
        for (threads, parallel) in &snapshots[1..] {
            assert_eq!(
                serial.len(),
                parallel.len(),
                "wide={wide_size} threads={threads}: same file set"
            );
            for ((sn, sb), (pn, pb)) in serial.iter().zip(parallel.iter()) {
                assert_eq!(sn, pn, "wide={wide_size} threads={threads}: file names");
                assert_eq!(
                    sb, pb,
                    "wide={wide_size} threads={threads}: {sn} bytes differ"
                );
            }
        }
    }
}
