//! Corruption hardening, end to end: flip any single byte of a packed
//! container and every read path — direct file I/O, mmap, the shared
//! block cache, and the wire — returns correct bytes or a typed error,
//! never a panic, a hang, or *undetected* wrong bytes (the container CRC
//! catches every single-byte flip that the open itself does not). A pack
//! killed at any injected fault point publishes nothing that parses as a
//! valid deck.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::serve::{QueryClient, ServeOptions, Server};
use zsmiles_core::shard::ShardPolicy;
use zsmiles_core::{
    check_deck, Archive, ArchiveReader, ArchiveWriter, AutoSource, BlockCache, DictBuilder, Fault,
    FaultySink, FaultySource, FileSink, InMemorySink, InMemorySource, ShardedWriter,
    WideDictBuilder, WriterOptions, ZsmilesError,
};

fn deck_lines() -> Vec<&'static [u8]> {
    let lines: [&[u8]; 5] = [
        b"COc1cc(C=O)ccc1O",
        b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
        b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        b"CCN(CC)CC",
        b"CC(=O)Oc1ccccc1C(=O)O",
    ];
    lines.iter().copied().cycle().take(60).collect()
}

fn deck_bytes() -> Vec<u8> {
    deck_lines()
        .iter()
        .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
        .collect()
}

fn dict(wide: bool) -> AnyDictionary {
    let base = DictBuilder {
        min_count: 2,
        preprocess: false,
        ..Default::default()
    };
    if wide {
        AnyDictionary::Wide(Box::new(
            WideDictBuilder {
                base,
                wide_size: 32,
            }
            .train(deck_lines())
            .unwrap(),
        ))
    } else {
        AnyDictionary::Base(Box::new(base.train(deck_lines()).unwrap()))
    }
}

/// A complete `.zsa` container in memory, either flavour.
fn packed(wide: bool) -> Vec<u8> {
    let mut w =
        ArchiveWriter::with_options(InMemorySink::new(), dict(wide), WriterOptions::default())
            .unwrap();
    w.write(&deck_bytes()).unwrap();
    let (sink, _) = w.finish().unwrap();
    sink.into_bytes()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsmiles_it_corrupt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The hardening contract for one corrupted container on one source:
/// every line either reads back correct or errors typed, and the
/// corruption never goes *undetected* — if the open succeeds, the CRC
/// pass must catch the flip.
fn assert_detected_or_typed<S: zsmiles_core::ArchiveSource>(source: S, expected: &[&[u8]]) {
    match ArchiveReader::from_source(source) {
        Err(_) => {} // typed refusal at open is a pass
        Ok(reader) => {
            assert!(
                reader.verify().is_err(),
                "a single-byte flip must fail the CRC pass when the open accepts the file"
            );
            // Reads still never panic — correct bytes or typed errors.
            for (i, want) in expected.iter().enumerate() {
                if let Ok(got) = reader.get(i) {
                    // Wrong bytes are tolerable only because verify()
                    // above already flagged the container.
                    let _ = got == *want;
                }
            }
            let _ = reader.get_range(0..expected.len().min(7));
            let _ = reader.get_many(&[0, expected.len() - 1]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flip any single byte of a packed `.zsa`: the in-memory, file,
    /// mmap and cached read paths all refuse at open or fail the CRC
    /// pass, and no access panics. Both dictionary flavours.
    #[test]
    fn single_byte_flip_is_always_detected(
        pos_seed in any::<u64>(),
        bit in 0u8..8,
        wide in any::<bool>(),
    ) {
        let mut bytes = packed(wide);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let expected = deck_lines();

        // In-memory source (the pure-logic path).
        assert_detected_or_typed(InMemorySource::new(bytes.clone()), &expected);
        // The all-in-memory convenience view must also refuse.
        prop_assert!(Archive::read_from(&bytes).is_err());

        // On-disk paths: mmap-or-platform-default and the block cache.
        let dir = tmpdir("flip");
        let path = dir.join(format!("flip_{pos}_{bit}_{wide}.zsa"));
        std::fs::write(&path, &bytes).unwrap();
        assert_detected_or_typed(AutoSource::open(&path).unwrap(), &expected);
        let cache = Arc::new(BlockCache::new(64, 1 << 20));
        assert_detected_or_typed(
            AutoSource::open_cached_with(&path, cache).unwrap(),
            &expected,
        );
        // The fsck walk agrees and names the damage instead of panicking.
        let report = check_deck(&path).unwrap();
        prop_assert!(!report.is_ok(), "check must flag the flip: {}", report.to_json());
        std::fs::remove_file(&path).ok();
    }

    /// A storage layer that injects faults *under* a valid container —
    /// flipped bits, silent short reads, errors, truncation — surfaces
    /// only correct bytes or typed errors through the reader.
    #[test]
    fn faulty_source_reads_never_panic(
        seed in any::<u64>(),
        at_op in 0u64..24,
        fault_pick in 0u8..3,
        wide in any::<bool>(),
    ) {
        let bytes = packed(wide);
        let fault = match fault_pick {
            0 => Fault::Error,
            1 => Fault::FlipBit,
            _ => Fault::Short,
        };
        let src = FaultySource::new(InMemorySource::new(bytes.clone()), seed)
            .with_fault(at_op, fault);
        let expected = deck_lines();
        if let Ok(reader) = ArchiveReader::from_source(src) {
            for (i, want) in expected.iter().enumerate() {
                match reader.get(i) {
                    Ok(got) => {
                        if got != *want {
                            // Wrong bytes require the fault to be
                            // detectable by the CRC pass on a clean
                            // re-walk... but the fault here is transient
                            // (one op), so re-reading must self-heal.
                            prop_assert_eq!(reader.get(i).unwrap(), want.to_vec());
                        }
                    }
                    Err(e) => prop_assert!(
                        !matches!(e, ZsmilesError::Preprocess(_)),
                        "storage faults surface as storage-shaped errors, got {e}"
                    ),
                }
            }
            let _ = reader.verify();
        }

        // A truncated view is a typed refusal, never a panic or a hang.
        let cut = (seed % bytes.len() as u64).max(1);
        let truncated = FaultySource::new(InMemorySource::new(bytes), seed).truncated(cut);
        let _ = ArchiveReader::from_source(truncated);
    }
}

// ---------------------------------------------------------------------------
// Crash-safe packing
// ---------------------------------------------------------------------------

/// Kill a pack at every fault point, for every fault kind: whatever
/// reached the medium is either byte-identical to a *complete* clean
/// container or does not parse as one. (In the real flow the
/// `AtomicFileSink` rename additionally unpublishes every failed case —
/// this sweep proves even the torn bytes themselves are safe.)
#[test]
fn killed_pack_never_leaves_a_parseable_container() {
    let dir = tmpdir("killpack");
    for wide in [false, true] {
        let clean = packed(wide);
        let total_ops = {
            // Count a clean pack's sink ops so the sweep covers them all.
            let mut w = ArchiveWriter::with_options(
                FaultySink::new(InMemorySink::new(), 1),
                dict(wide),
                WriterOptions::default(),
            )
            .unwrap();
            w.write(&deck_bytes()).unwrap();
            let (sink, _) = w.finish().unwrap();
            assert!(Archive::read_from(sink.inner().bytes()).is_ok());
            sink.ops()
        };
        assert!(total_ops > 4, "sweep has fault points to cover");
        for kill_at in 0..total_ops {
            for fault in [Fault::Error, Fault::Short, Fault::FlipBit] {
                let path = dir.join(format!("kill_{wide}_{kill_at}_{fault:?}.zsa"));
                let result = FileSink::create(&path)
                    .map(|f| FaultySink::new(f, 7).with_fault(kill_at, fault))
                    .and_then(|sink| {
                        ArchiveWriter::with_options(sink, dict(wide), WriterOptions::default())
                    })
                    .and_then(|mut w| {
                        w.write(&deck_bytes())?;
                        w.finish().map(|_| ())
                    });
                let leftover = std::fs::read(&path).unwrap_or_default();
                if result.is_ok() && !matches!(fault, Fault::FlipBit) {
                    // Error/Short only pass through on a payload-free op
                    // (a flush) — then the pack must be byte-perfect.
                    assert_eq!(
                        leftover, clean,
                        "a {fault:?} at op {kill_at} of {total_ops} reported success"
                    );
                }
                assert!(
                    leftover == clean || Archive::read_from(&leftover).is_err(),
                    "{fault:?} at op {kill_at} left a half-valid container \
                     ({} bytes, clean is {})",
                    leftover.len(),
                    clean.len()
                );
                std::fs::remove_file(&path).ok();
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The filesystem-level guarantee: a pack that never reaches `finish`
/// leaves no deck at the destination — only inert temp files — and a
/// re-pack over an existing deck replaces it atomically.
#[test]
fn unfinished_pack_publishes_nothing() {
    let dir = tmpdir("unfinished");
    let zsm = dir.join("deck.zsm");

    // Abandon a pack mid-flight (simulates a crash before finish()).
    {
        let mut w = ShardedWriter::create(
            &zsm,
            dict(false),
            ShardPolicy::by_lines(16),
            WriterOptions::default(),
        )
        .unwrap();
        w.write(&deck_bytes()).unwrap();
        // dropped without finish()
    }
    assert!(!zsm.exists(), "no manifest published");
    // Completed shards are published individually (each rename is its own
    // atomic commit) — but the *deck* commit point is the manifest, so
    // nothing opens, and every published shard must be a complete
    // container, never a torn one. The in-progress shard stays a `.tmp`.
    let published: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "zsa" || x == "zsm"))
        .collect();
    for shard in &published {
        let reader = ArchiveReader::from_source(AutoSource::open(shard).unwrap())
            .unwrap_or_else(|e| panic!("published shard {shard:?} is torn: {e}"));
        reader.verify().unwrap();
    }
    assert!(
        zsmiles_core::DeckReader::open(&zsm).is_err(),
        "the deck must not open without its manifest"
    );

    // A completed pack publishes; an abandoned re-pack leaves it intact.
    let mut w = ShardedWriter::create(
        &zsm,
        dict(false),
        ShardPolicy::by_lines(16),
        WriterOptions::default(),
    )
    .unwrap();
    w.write(&deck_bytes()).unwrap();
    w.finish().unwrap();
    assert!(check_deck(&zsm).unwrap().is_ok());
    let before = std::fs::read(&zsm).unwrap();

    {
        let mut w2 = ShardedWriter::create(
            &zsm,
            dict(false),
            ShardPolicy::by_lines(16),
            WriterOptions::default(),
        )
        .unwrap();
        w2.write(&deck_bytes()[..40]).unwrap();
        // dropped without finish()
    }
    assert_eq!(
        std::fs::read(&zsm).unwrap(),
        before,
        "the old manifest survives an abandoned re-pack"
    );
    assert!(check_deck(&zsm).unwrap().is_ok(), "old deck still sound");

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Degraded serving over the wire
// ---------------------------------------------------------------------------

/// One quarantined shard: the deck serves every other shard over TCP
/// byte-exactly, health reports degraded, unavailable lines come back as
/// typed errors, and a flip to a repaired deck restores ok.
#[test]
fn degraded_deck_serves_healthy_shards_over_the_wire() {
    let dir = tmpdir("degraded_wire");
    let pack_at = |name: &str, generation: u64| {
        let path = dir.join(name);
        let mut w = ShardedWriter::create(
            &path,
            dict(false),
            ShardPolicy::by_lines(20),
            WriterOptions::default(),
        )
        .unwrap();
        w.set_generation(generation);
        w.write(&deck_bytes()).unwrap();
        w.finish().unwrap();
        path
    };
    let zsm = pack_at("deck.zsm", 1);
    let repaired = pack_at("repaired.zsm", 2);
    let expected = deck_lines();

    // Quarantine the middle shard (lines 20..40) by moving it aside.
    std::fs::rename(
        dir.join("deck.00001.zsa"),
        dir.join("deck.00001.zsa.quarantined"),
    )
    .unwrap();

    let handle = Server::start(
        &zsm,
        "127.0.0.1:0",
        ServeOptions {
            degraded: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = QueryClient::connect(handle.addr()).unwrap();

    let health = client.health().unwrap();
    assert!(!health.ok);
    assert_eq!(health.generation, 1);
    assert_eq!(health.total_shards, 3);
    assert_eq!(health.quarantined_shards, 1);
    assert_eq!(health.unavailable_lines, 20);

    // Every healthy line byte-matches the original; every quarantined
    // line is a typed error that names the shard.
    for (i, want) in expected.iter().enumerate() {
        if (20..40).contains(&i) {
            let err = client.get(i as u64).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("Unavailable") && msg.contains("deck.00001.zsa"),
                "line {i}: {msg}"
            );
        } else {
            assert_eq!(client.get(i as u64).unwrap(), *want, "line {i}");
        }
    }
    // Batched reads spanning the hole fail typed, not partially.
    assert!(client.get_range(10, 30).is_err());
    assert!(client.get_many(&[0, 25, 59]).is_err());

    // Flip to the repaired generation: health is ok, the hole is gone.
    assert_eq!(client.flip(repaired.to_str().unwrap()).unwrap(), 2);
    let health = client.health().unwrap();
    assert!(health.ok);
    assert_eq!(health.quarantined_shards, 0);
    assert_eq!(client.get(25).unwrap(), expected[25]);

    client.shutdown().unwrap();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}
