//! Failure injection across the stack: corrupted archives, corrupted
//! dictionaries, truncated sidecars, hostile inputs. Every failure must be
//! *detected and reported* — never a panic, never silent garbage where
//! detection is possible.

use molgen::Dataset;
use zsmiles_core::dict::format as dict_format;
use zsmiles_core::{Compressor, Decompressor, DictBuilder, Dictionary, LineIndex, ZsmilesError};

fn fixture() -> (Dictionary, Vec<u8>, Vec<u8>) {
    let ds = Dataset::generate_mixed(300, 0xFA11);
    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let mut z = Vec::new();
    Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);
    (dict, ds.as_bytes().to_vec(), z)
}

#[test]
fn corrupted_archive_bytes_error_or_decode_validly() {
    let (dict, _, z) = fixture();
    let mut dc = Decompressor::new(&dict);
    // Flip bytes at a spread of positions. A flipped byte either becomes
    // an invalid code (error) or another valid code (different molecule —
    // detectable only by checksums, which the readable format deliberately
    // omits); both are acceptable, panics are not.
    for pos in (0..z.len()).step_by(97) {
        let mut bad = z.clone();
        bad[pos] ^= 0x15;
        if bad[pos] == b'\n' {
            continue; // splitting a line changes the line count, fine
        }
        let mut out = Vec::new();
        let _ = dc.decompress_buffer(&bad, &mut out); // must not panic
    }
}

#[test]
fn control_bytes_in_archive_are_rejected() {
    let (dict, _, _) = fixture();
    let mut dc = Decompressor::new(&dict);
    for bad_byte in [0x00u8, 0x07, 0x1F, 0x7F] {
        let mut out = Vec::new();
        let r = dc.decompress_line(&[b'C', bad_byte], &mut out);
        assert!(
            matches!(r, Err(ZsmilesError::UnknownCode { .. })),
            "byte {bad_byte:#04x} must be rejected"
        );
    }
}

#[test]
fn corrupted_dictionary_file_is_rejected_with_line_info() {
    let (dict, _, _) = fixture();
    let text = dict_format::to_string(&dict);

    // Truncate mid-entry.
    let cut = &text[..text.len() - 5];
    match dict_format::read_dict(cut.as_bytes()) {
        Ok(d) => {
            // Losing whole trailing lines can still parse; it must at
            // least validate.
            d.validate().unwrap();
        }
        Err(ZsmilesError::DictFormat { .. }) => {}
        Err(e) => panic!("unexpected error class: {e}"),
    }

    // Inject a malformed entry line.
    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(6, "not-a-valid-entry");
    let broken = lines.join("\n");
    let r = dict_format::read_dict(broken.as_bytes());
    assert!(
        matches!(r, Err(ZsmilesError::DictFormat { line: 7, .. })),
        "{r:?}"
    );
}

#[test]
fn mismatched_dictionary_decodes_to_garbage_not_panic() {
    // Compressing with one dictionary and decompressing with another is a
    // user error the readable format cannot detect (codes are just bytes);
    // it must still never panic and mostly produce *something*.
    let (dict_a, input, _) = fixture();
    let other = Dataset::generate(molgen::profiles::GDB17, 300, 0x0DD);
    let dict_b = DictBuilder::default().train(other.iter()).unwrap();

    let mut z = Vec::new();
    Compressor::new(&dict_a).compress_buffer(&input, &mut z);
    let mut out = Vec::new();
    let _ = Decompressor::new(&dict_b).decompress_buffer(&z, &mut out); // no panic
}

#[test]
fn index_sidecar_corruption_detected() {
    let (_, _, z) = fixture();
    let idx = LineIndex::build(&z);
    let mut blob = Vec::new();
    idx.write_to(&mut blob).unwrap();

    // Magic corruption.
    let mut bad = blob.clone();
    bad[0] ^= 0xFF;
    assert!(LineIndex::read_from(bad.as_slice()).is_err());

    // Truncations at every header boundary.
    for cut in [0usize, 4, 8, 12, 20, blob.len() - 3] {
        assert!(
            LineIndex::read_from(&blob[..cut.min(blob.len())]).is_err(),
            "cut at {cut}"
        );
    }

    // Offset table corruption (non-monotonic).
    let mut bad = blob.clone();
    if bad.len() > 40 {
        // Swap two offset entries.
        let a = 24;
        let b = 32;
        for k in 0..8 {
            bad.swap(a + k, b + k);
        }
        assert!(LineIndex::read_from(bad.as_slice()).is_err());
    }
}

#[test]
fn baseline_containers_detect_corruption() {
    let (_, input, _) = fixture();

    let bz = textcomp::bzip::compress(&input);
    for pos in (12..bz.len()).step_by(211) {
        let mut bad = bz.clone();
        bad[pos] ^= 0x08;
        if let Ok(out) = textcomp::bzip::decompress(&bad) {
            assert_eq!(out, input, "undetected change must be a no-op")
        }
    }

    let lz = textcomp::lz::compress(&input);
    for pos in (12..lz.len()).step_by(211) {
        let mut bad = lz.clone();
        bad[pos] ^= 0x08;
        if let Ok(out) = textcomp::lz::decompress(&bad) {
            assert_eq!(out, input, "undetected change must be a no-op")
        }
    }
}

#[test]
fn hostile_lines_compress_without_panic() {
    let (dict, _, _) = fixture();
    let mut c = Compressor::new(&dict);
    let hostile: Vec<Vec<u8>> = vec![
        vec![],
        vec![b' '; 100], // escape marker as content
        (0u8..=255).filter(|&b| b != b'\n').collect(),
        vec![0xFF; 300],
        b"C1CC".to_vec(), // invalid SMILES (unclosed ring)
        b"((((((((".to_vec(),
        vec![b'%'; 50],
    ];
    let mut dc = Decompressor::new(&dict);
    for line in hostile {
        let mut z = Vec::new();
        c.compress_line(&line, &mut z);
        let mut back = Vec::new();
        dc.decompress_line(&z, &mut back).unwrap();
        // Invalid SMILES are compressed raw (preprocess falls back), so
        // the round trip is exact for them.
        assert_eq!(back, line);
    }
}

#[test]
fn wide_archive_corruption_never_panics() {
    let ds = Dataset::generate_mixed(200, 0xFA12);
    let dict = zsmiles_core::WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 128,
    }
    .train(ds.iter())
    .unwrap();
    let mut z = Vec::new();
    zsmiles_core::WideCompressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);
    let dc = zsmiles_core::WideDecompressor::new(&dict);
    for pos in (0..z.len()).step_by(89) {
        let mut bad = z.clone();
        bad[pos] ^= 0x15;
        let mut out = Vec::new();
        let _ = dc.decompress_buffer(&bad, &mut out); // must not panic
    }
    // Truncating right after a page byte is the wide-specific corruption.
    if let Some(pp) = z.iter().position(|&b| b >= 0xF8) {
        let mut out = Vec::new();
        let r = dc.decompress_line(&z[..=pp], &mut out);
        assert!(
            matches!(r, Err(ZsmilesError::TruncatedWideCode { .. })),
            "cut after page byte must be detected: {r:?}"
        );
    }
}

#[test]
fn wide_dictionary_file_corruption_rejected() {
    let ds = Dataset::generate_mixed(200, 0xFA13);
    let dict = zsmiles_core::WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 64,
    }
    .train(ds.iter())
    .unwrap();
    let mut buf = Vec::new();
    zsmiles_core::wide::write_wide_dict(&dict, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(7, "not-a-valid-entry");
    let broken = lines.join("\n");
    let r = zsmiles_core::wide::read_wide_dict(broken.as_bytes());
    assert!(
        matches!(r, Err(ZsmilesError::DictFormat { line: 8, .. })),
        "{r:?}"
    );

    // A base-format file must not parse as a wide dictionary.
    let (base_dict, _, _) = fixture();
    let base_text = dict_format::to_string(&base_dict);
    assert!(zsmiles_core::wide::read_wide_dict(base_text.as_bytes()).is_err());
}

#[test]
fn wide_hostile_lines_round_trip_exactly() {
    let ds = Dataset::generate_mixed(200, 0xFA14);
    let dict = zsmiles_core::WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 64,
    }
    .train(ds.iter())
    .unwrap();
    let mut c = zsmiles_core::WideCompressor::new(&dict).with_preprocess(false);
    let dc = zsmiles_core::WideDecompressor::new(&dict);
    let hostile: Vec<Vec<u8>> = vec![
        vec![],
        vec![b' '; 100],
        (0u8..=255).filter(|&b| b != b'\n').collect(),
        vec![0xF8; 60], // page-prefix bytes as *content* must escape cleanly
        vec![0xFF; 300],
        b"((((((((".to_vec(),
    ];
    for line in hostile {
        let mut z = Vec::new();
        c.compress_line(&line, &mut z);
        let mut back = Vec::new();
        dc.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, line);
    }
}

#[test]
fn gpu_sim_rejects_bad_input_like_cpu() {
    let (dict, _, _) = fixture();
    let r = zsmiles_gpu::decompress(&dict, b"\x01\x01\n", &zsmiles_gpu::GpuOptions::default());
    assert!(r.is_err());
}

#[test]
fn oversized_lines_rejected_cleanly_by_gpu_kernel() {
    // Kernel shared-memory budget is MAX_LINE; the CPU engine has no such
    // limit. Assert the contract boundary is enforced by a panic guard in
    // debug (assert!) — here we stay just inside and verify success.
    let (dict, _, _) = fixture();
    let long_line = vec![b'C'; zsmiles_gpu::MAX_LINE];
    let mut input = long_line.clone();
    input.push(b'\n');
    let run = zsmiles_gpu::compress(&dict, &input, &zsmiles_gpu::GpuOptions::default());
    assert_eq!(run.lines, 1);
    let back =
        zsmiles_gpu::decompress(&dict, &run.output, &zsmiles_gpu::GpuOptions::default()).unwrap();
    assert_eq!(&back.output[..long_line.len()], long_line.as_slice());
}
