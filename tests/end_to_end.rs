//! Cross-crate integration: the full generate → train → compress →
//! random-access → decompress → validate loop, plus the system-level
//! invariants the paper's design promises.

use molgen::{profiles, Dataset};
use zsmiles_core::dict::format as dict_format;
use zsmiles_core::{
    compress_parallel, Compressor, Decompressor, DictBuilder, LineIndex, SpAlgorithm,
};

fn deck() -> Dataset {
    Dataset::generate_mixed(1_500, 0xE2E)
}

#[test]
fn full_pipeline_preserves_molecules() {
    let ds = deck();
    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let mut z = Vec::new();
    let stats = Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);
    assert_eq!(stats.lines, ds.len());
    assert!(
        stats.ratio() < 0.6,
        "compression actually happens: {}",
        stats.ratio()
    );

    let mut back = Vec::new();
    Decompressor::new(&dict)
        .decompress_buffer(&z, &mut back)
        .unwrap();
    let restored = Dataset::from_bytes(&back);
    assert_eq!(restored.len(), ds.len());
    for (orig, rest) in ds.iter().zip(restored.iter()) {
        let a = smiles::parser::parse(orig).unwrap();
        let b = smiles::parser::parse(rest).unwrap();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.atom_count(), b.atom_count());
        assert_eq!(a.ring_count(), b.ring_count());
    }
}

#[test]
fn compressed_output_is_readable_and_separable() {
    let ds = deck();
    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let mut z = Vec::new();
    Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);

    // Readability: every byte is displayable (printable ASCII, space as
    // the escape marker, extended bytes) or the line separator.
    for &b in &z {
        assert!(
            b == b'\n' || b == b' ' || (0x21..=0x7E).contains(&b) || b >= 0x80,
            "byte {b:#04x} breaks the readability requirement"
        );
    }

    // Separability: same line count, and each compressed line decompresses
    // alone to its own molecule.
    let lines: Vec<&[u8]> = z.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), ds.len());
    let mut dc = Decompressor::new(&dict);
    for (i, zl) in lines.iter().enumerate().step_by(97) {
        let mut one = Vec::new();
        dc.decompress_line(zl, &mut one).unwrap();
        let a = smiles::parser::parse(ds.line(i)).unwrap();
        let b = smiles::parser::parse(&one).unwrap();
        assert_eq!(a.signature(), b.signature(), "line {i}");
    }
}

#[test]
fn shared_dictionary_compresses_foreign_datasets() {
    // Input-independence: one dictionary serves datasets it never saw,
    // never expanding compliant SMILES.
    let train = Dataset::generate_mixed(1_000, 1);
    let dict = DictBuilder::default().train(train.iter()).unwrap();
    for (name, ds) in [
        ("gdb17", Dataset::generate(profiles::GDB17, 500, 999)),
        ("mediate", Dataset::generate(profiles::MEDIATE, 500, 998)),
        (
            "exscalate",
            Dataset::generate(profiles::EXSCALATE, 500, 997),
        ),
    ] {
        let mut z = Vec::new();
        let stats = Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);
        assert!(
            stats.out_bytes <= stats.in_bytes,
            "{name}: no-expansion guarantee violated ({} > {})",
            stats.out_bytes,
            stats.in_bytes
        );
        let mut back = Vec::new();
        Decompressor::new(&dict)
            .decompress_buffer(&z, &mut back)
            .unwrap();
        assert_eq!(Dataset::from_bytes(&back).len(), ds.len(), "{name}");
    }
}

#[test]
fn dictionary_file_round_trip_preserves_compression() {
    // An archive written with a dictionary must decompress with the
    // dictionary re-loaded from its .dct file (shareability).
    let ds = deck();
    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let text = dict_format::to_string(&dict);
    let reloaded = dict_format::read_dict(text.as_bytes()).unwrap();

    let mut z1 = Vec::new();
    Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z1);
    let mut z2 = Vec::new();
    Compressor::new(&reloaded).compress_buffer(ds.as_bytes(), &mut z2);
    assert_eq!(z1, z2, "reloaded dictionary compresses identically");

    let mut back = Vec::new();
    Decompressor::new(&reloaded)
        .decompress_buffer(&z1, &mut back)
        .unwrap();
    assert!(!back.is_empty());
}

#[test]
fn serial_parallel_and_gpu_agree() {
    let ds = deck();
    let dict = DictBuilder::default().train(ds.iter()).unwrap();

    let mut serial = Vec::new();
    Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut serial);
    let (par, _) = compress_parallel(&dict, ds.as_bytes(), SpAlgorithm::BackwardDp, 4);
    assert_eq!(serial, par, "parallel == serial");

    let gpu = zsmiles_gpu::compress(&dict, ds.as_bytes(), &zsmiles_gpu::GpuOptions::default());
    assert_eq!(serial, gpu.output, "simulated device == serial");

    // Dijkstra engine agrees as well.
    let mut dijkstra = Vec::new();
    Compressor::new(&dict)
        .with_algorithm(SpAlgorithm::Dijkstra)
        .compress_buffer(ds.as_bytes(), &mut dijkstra);
    assert_eq!(serial, dijkstra, "dijkstra == dp");
}

#[test]
fn random_access_index_survives_serialization() {
    let ds = deck();
    let dict = DictBuilder::default().train(ds.iter()).unwrap();
    let mut z = Vec::new();
    Compressor::new(&dict).compress_buffer(ds.as_bytes(), &mut z);

    let idx = LineIndex::build(&z);
    let mut blob = Vec::new();
    idx.write_to(&mut blob).unwrap();
    let idx2 = LineIndex::read_from(blob.as_slice()).unwrap();

    for i in [0usize, 7, 500, ds.len() - 1] {
        let line = idx2.decompress_line_at(&dict, &z, i).unwrap();
        let a = smiles::parser::parse(ds.line(i)).unwrap();
        let b = smiles::parser::parse(&line).unwrap();
        assert_eq!(a.signature(), b.signature(), "line {i}");
    }
}

#[test]
fn cli_pack_get_unpack_single_file_workflow() {
    // The container workflow end to end through the CLI code paths the
    // binary runs: gen → train → pack → get --archive → unpack, with the
    // .zsa file as the only artifact carried between steps.
    let tmp = |name: &str| {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    };
    let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
    let smi = tmp("e2e_container.smi");
    let dct = tmp("e2e_container.dct");
    let zsa = tmp("e2e_container.zsa");
    let back = tmp("e2e_container_back.smi");

    zsmiles_cli::run(&argv(&[
        "gen",
        "--profile",
        "mixed",
        "-n",
        "400",
        "--seed",
        "77",
        "-o",
        &smi,
        "--quiet",
    ]))
    .unwrap();
    zsmiles_cli::run(&argv(&[
        "train",
        "-i",
        &smi,
        "-o",
        &dct,
        "--no-preprocess",
        "--quiet",
    ]))
    .unwrap();
    zsmiles_cli::run(&argv(&[
        "pack",
        "-i",
        &smi,
        "-d",
        &dct,
        "-o",
        &zsa,
        "--threads",
        "2",
        "--quiet",
    ]))
    .unwrap();

    // The archive alone answers random-access queries (K arbitrary).
    zsmiles_cli::run(&argv(&["get", "--archive", &zsa, "--line", "123"])).unwrap();

    // And unpacks byte-identically (preprocess off at train time).
    zsmiles_cli::run(&argv(&["unpack", "-i", &zsa, "-o", &back, "--quiet"])).unwrap();
    assert_eq!(std::fs::read(&smi).unwrap(), std::fs::read(&back).unwrap());

    // Library-level agreement: the same .zsa opened via the API returns
    // the same line the CLI printed.
    let archive = zsmiles_core::Archive::open(std::path::Path::new(&zsa)).unwrap();
    let original = Dataset::load(std::path::Path::new(&smi)).unwrap();
    assert_eq!(archive.len(), original.len());
    assert_eq!(archive.get(123).unwrap(), original.line(123));

    for f in [&smi, &dct, &zsa, &back] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn archives_cut_and_combine() {
    // The separability/shared-dictionary workflow: slice two archives,
    // splice them, decompress the splice.
    let a = Dataset::generate(profiles::MEDIATE, 400, 5);
    let b = Dataset::generate(profiles::EXSCALATE, 400, 6);
    let reference = Dataset::generate_mixed(800, 7);
    let dict = DictBuilder::default().train(reference.iter()).unwrap();

    let mut za = Vec::new();
    Compressor::new(&dict).compress_buffer(a.as_bytes(), &mut za);
    let mut zb = Vec::new();
    Compressor::new(&dict).compress_buffer(b.as_bytes(), &mut zb);

    let ia = LineIndex::build(&za);
    let mut spliced = Vec::new();
    for i in (0..ia.len()).step_by(3) {
        spliced.extend_from_slice(ia.line(&za, i));
        spliced.push(b'\n');
    }
    spliced.extend_from_slice(&zb);

    let mut restored = Vec::new();
    Decompressor::new(&dict)
        .decompress_buffer(&spliced, &mut restored)
        .unwrap();
    let ds = Dataset::from_bytes(&restored);
    assert_eq!(ds.len(), ia.len().div_ceil(3) + b.len());
    for line in ds.iter() {
        smiles::validate::full_check(line).unwrap();
    }
}
